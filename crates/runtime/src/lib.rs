//! # pig-runtime — real-thread execution for simnet actors
//!
//! The protocols in this workspace are written against the
//! [`simnet::Actor`] abstraction, which makes them execution-agnostic:
//! the deterministic simulator drives them for experiments, and this
//! crate drives the *same unmodified code* on OS threads with real
//! channels and wall-clock timers — one thread per node, crossbeam
//! channels as the network.
//!
//! This is the shape of a production deployment (minus serialization and
//! TCP): it demonstrates that nothing in the protocol crates depends on
//! simulation, and it provides a second, independent execution substrate
//! for validating protocol behaviour.
//!
//! ## Example
//!
//! ```
//! use pig_runtime::Runtime;
//! use simnet::{Actor, Context, Message, NodeId, TimerId};
//! use std::time::Duration;
//!
//! #[derive(Debug, Clone)]
//! struct Ping;
//! impl Message for Ping {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! struct Echo;
//! impl Actor<Ping> for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<Ping>) {
//!         if ctx.node() == NodeId(0) { ctx.send(NodeId(1), Ping); }
//!     }
//!     fn on_message(&mut self, from: NodeId, _m: Ping, ctx: &mut Context<Ping>) {
//!         if ctx.node() == NodeId(1) { ctx.send(from, Ping); }
//!     }
//!     fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Ping>) {}
//! }
//!
//! let mut rt = Runtime::new(42);
//! rt.add_actor(Echo);
//! rt.add_actor(Echo);
//! let stats = rt.run_for(Duration::from_millis(50));
//! assert!(stats.msgs_delivered >= 2);
//! ```

#![warn(missing_docs)]

pub mod net;

pub use net::{NetRunStats, NetRuntime};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{Actor, Context, Effect, Message, NodeId, SimDuration, SimTime, TimerId};
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) enum Inbound<M> {
    Deliver { from: NodeId, msg: M },
    Stop,
}

/// Aggregate counters from a runtime run.
#[derive(Debug, Default, Clone)]
pub struct RuntimeStats {
    /// Messages delivered to actors across all nodes.
    pub msgs_delivered: u64,
    /// Timers fired across all nodes.
    pub timers_fired: u64,
}

#[derive(PartialEq, Eq)]
struct PendingTimer {
    at: Instant,
    id: TimerId,
    kind: u64,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other.at.cmp(&self.at).then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A thread-per-node runtime for [`simnet::Actor`]s.
pub struct Runtime<M: Message + Send> {
    seed: u64,
    senders: Vec<Sender<Inbound<M>>>,
    receivers: Vec<Option<Receiver<Inbound<M>>>>,
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    stats: Arc<Mutex<RuntimeStats>>,
    epoch: Instant,
}

impl<M: Message + Send> Runtime<M> {
    /// New runtime; actors added next get node ids 0, 1, …
    pub fn new(seed: u64) -> Self {
        Runtime {
            seed,
            senders: Vec::new(),
            receivers: Vec::new(),
            actors: Vec::new(),
            stats: Arc::new(Mutex::new(RuntimeStats::default())),
            epoch: Instant::now(),
        }
    }

    /// Register the next actor; returns its node id.
    pub fn add_actor(&mut self, actor: impl Actor<M> + Send + 'static) -> NodeId {
        let id = NodeId::from(self.actors.len());
        let (tx, rx) = unbounded();
        self.senders.push(tx);
        self.receivers.push(Some(rx));
        self.actors.push(Some(Box::new(actor)));
        id
    }

    /// Run every actor on its own thread for `duration`, then stop all
    /// threads and return aggregate stats.
    pub fn run_for(&mut self, duration: Duration) -> RuntimeStats {
        let n = self.actors.len();
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(n);
        let (done_tx, done_rx) = bounded::<()>(n);
        self.epoch = Instant::now();

        for i in 0..n {
            let actor = self.actors[i].take().expect("actor already running");
            let rx = self.receivers[i].take().expect("receiver already running");
            let senders = self.senders.clone();
            let stats = self.stats.clone();
            let epoch = self.epoch;
            let node = NodeId::from(i);
            // Same per-node seed derivation as `simnet::Simulation`, so a
            // protocol actor sees an identical RNG stream for a given
            // (master seed, node) pair on either substrate.
            let seed = simnet::derive_node_seed(self.seed, i);
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                let outbound = move |to: NodeId, msg: M| {
                    if let Some(tx) = senders.get(to.index()) {
                        let _ = tx.send(Inbound::Deliver { from: node, msg });
                    }
                };
                node_loop(node, actor, rx, outbound, stats, epoch, seed);
                let _ = done.send(());
            }));
        }

        std::thread::sleep(duration);
        for tx in &self.senders {
            let _ = tx.send(Inbound::Stop);
        }
        for h in handles {
            let _ = h.join();
        }
        drop(done_rx);
        self.stats.lock().clone()
    }
}

/// The per-node event loop shared by every real-thread substrate: fires
/// due timers, blocks on the inbound channel up to the next deadline,
/// and routes `Effect::Send` through `outbound` — a channel send for the
/// in-process [`Runtime`], an encode-and-frame for [`net::NetRuntime`].
pub(crate) fn node_loop<M: Message + Send>(
    node: NodeId,
    mut actor: Box<dyn Actor<M> + Send>,
    rx: Receiver<Inbound<M>>,
    mut outbound: impl FnMut(NodeId, M),
    stats: Arc<Mutex<RuntimeStats>>,
    epoch: Instant,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut timer_seq: u64 = (node.0 as u64) << 40; // per-node unique ids
    let mut effects: Vec<Effect<M>> = Vec::new();
    let mut delivered = 0u64;
    let mut fired = 0u64;

    let now_sim = |epoch: Instant| SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);

    // on_start
    {
        let mut ctx = Context::new(now_sim(epoch), node, &mut rng, &mut effects, &mut timer_seq);
        actor.on_start(&mut ctx);
    }
    apply_effects(&mut effects, &mut outbound, &mut timers, &mut cancelled);

    loop {
        // Fire due timers first.
        while let Some(t) = timers.peek() {
            if t.at > Instant::now() {
                break;
            }
            let t = timers.pop().expect("peeked");
            if cancelled.remove(&t.id.0) {
                continue;
            }
            fired += 1;
            let mut ctx =
                Context::new(now_sim(epoch), node, &mut rng, &mut effects, &mut timer_seq);
            actor.on_timer(t.id, t.kind, &mut ctx);
            apply_effects(&mut effects, &mut outbound, &mut timers, &mut cancelled);
        }

        let next_deadline = timers.peek().map(|t| t.at);
        let inbound = match next_deadline {
            Some(at) => {
                let timeout = at.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
        };

        match inbound {
            None => continue, // timer due; handled at loop top
            Some(Inbound::Stop) => break,
            Some(Inbound::Deliver { from, msg }) => {
                delivered += 1;
                let mut ctx =
                    Context::new(now_sim(epoch), node, &mut rng, &mut effects, &mut timer_seq);
                actor.on_message(from, msg, &mut ctx);
                apply_effects(&mut effects, &mut outbound, &mut timers, &mut cancelled);
            }
        }
    }

    let mut s = stats.lock();
    s.msgs_delivered += delivered;
    s.timers_fired += fired;
}

fn apply_effects<M: Message + Send>(
    effects: &mut Vec<Effect<M>>,
    outbound: &mut impl FnMut(NodeId, M),
    timers: &mut BinaryHeap<PendingTimer>,
    cancelled: &mut HashSet<u64>,
) {
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { to, msg } => outbound(to, msg),
            Effect::SetTimer { id, delay, kind } => {
                timers.push(PendingTimer {
                    at: Instant::now() + Duration::from_nanos(delay.as_nanos()),
                    id,
                    kind,
                });
            }
            Effect::CancelTimer(id) => {
                cancelled.insert(id.0);
            }
            Effect::Charge(_) => {
                // Real CPU time is really spent; nothing to account.
                let _ = SimDuration::ZERO;
            }
            Effect::Control(_) => {
                // Fault injection is a simulator facility; real threads
                // have no crash/partition switchboard. Dropped so that
                // nemesis-bearing actor sets still run under threads
                // (they just run fault-free).
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }
    impl Message for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    struct Pinger {
        peer: NodeId,
        pongs: Arc<Mutex<u64>>,
    }
    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.send(self.peer, Msg::Ping(0));
        }
        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<Msg>) {
            if let Msg::Pong(k) = msg {
                *self.pongs.lock() += 1;
                ctx.send(from, Msg::Ping(k + 1));
            }
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Msg>) {}
    }

    struct Ponger;
    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<Msg>) {
            if let Msg::Ping(k) = msg {
                ctx.send(from, Msg::Pong(k));
            }
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Msg>) {}
    }

    #[test]
    fn ping_pong_over_real_threads() {
        let pongs = Arc::new(Mutex::new(0u64));
        let mut rt = Runtime::new(1);
        rt.add_actor(Pinger {
            peer: NodeId(1),
            pongs: pongs.clone(),
        });
        rt.add_actor(Ponger);
        let stats = rt.run_for(Duration::from_millis(100));
        let got = *pongs.lock();
        assert!(got > 100, "expected thousands of round trips, got {got}");
        assert!(stats.msgs_delivered > got);
    }

    struct TimerCounter {
        fired: Arc<Mutex<u64>>,
    }
    impl Actor<Msg> for TimerCounter {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            ctx.set_timer(SimDuration::from_millis(5), 1);
        }
        fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Context<Msg>) {}
        fn on_timer(&mut self, _i: TimerId, kind: u64, ctx: &mut Context<Msg>) {
            *self.fired.lock() += 1;
            ctx.set_timer(SimDuration::from_millis(5), kind);
        }
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let fired = Arc::new(Mutex::new(0u64));
        let mut rt = Runtime::new(2);
        rt.add_actor(TimerCounter {
            fired: fired.clone(),
        });
        rt.run_for(Duration::from_millis(120));
        let got = *fired.lock();
        // ~24 expected at 5ms period over 120ms; allow generous slack for
        // CI scheduling noise.
        assert!((5..60).contains(&got), "timer chain fired {got} times");
    }

    struct Canceller {
        fired: Arc<Mutex<u64>>,
    }
    impl Actor<Msg> for Canceller {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            let t = ctx.set_timer(SimDuration::from_millis(10), 7);
            ctx.cancel_timer(t);
        }
        fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Context<Msg>) {}
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Msg>) {
            *self.fired.lock() += 1;
        }
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let fired = Arc::new(Mutex::new(0u64));
        let mut rt = Runtime::new(3);
        rt.add_actor(Canceller {
            fired: fired.clone(),
        });
        rt.run_for(Duration::from_millis(50));
        assert_eq!(*fired.lock(), 0);
    }

    /// Records the first value its per-node RNG produces.
    struct RngProbe {
        out: Arc<Mutex<Vec<(usize, u64)>>>,
    }
    impl Actor<Msg> for RngProbe {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            use rand::Rng;
            let v = ctx.rng().gen::<u64>();
            self.out.lock().push((ctx.node().index(), v));
        }
        fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Context<Msg>) {}
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Msg>) {}
    }

    #[test]
    fn rng_handoff_matches_simulator() {
        // The same (master seed, node) pair must yield the same RNG
        // stream on real threads as under the simulator — the shared
        // `simnet::derive_node_seed` scheme.
        let threads = Arc::new(Mutex::new(Vec::new()));
        let mut rt = Runtime::new(42);
        for _ in 0..3 {
            rt.add_actor(RngProbe {
                out: threads.clone(),
            });
        }
        rt.run_for(Duration::from_millis(20));

        let simulated = Arc::new(Mutex::new(Vec::new()));
        let mut sim: simnet::Simulation<Msg> =
            simnet::Simulation::new(simnet::Topology::lan(3), simnet::CpuCostModel::free(), 42);
        for _ in 0..3 {
            sim.add_actor(Box::new(RngProbe {
                out: simulated.clone(),
            }));
        }
        sim.run_until(SimTime::from_millis(1));

        let mut a = threads.lock().clone();
        a.sort_unstable();
        let mut b = simulated.lock().clone();
        b.sort_unstable();
        assert_eq!(a, b, "per-node RNG streams must match across substrates");
    }
}
