//! # netsub — TCP socket execution for simnet actors
//!
//! The third execution substrate: the same unmodified [`simnet::Actor`]
//! protocol code, but with real sockets between nodes. Each node gets
//! its own thread (reusing the crate's event loop: wall-clock timers,
//! per-node seeded RNG), a TCP listener, and lazily established
//! outbound connections to every peer it talks to. Messages cross node
//! boundaries as encoded [`Wire`] frames — the exact bytes
//! `Message::wire_size()` charges on the simulator — so a protocol
//! exercised here has a complete, decodable wire schema, not an
//! estimate.
//!
//! ## Transport
//!
//! - One listener per node on `127.0.0.1:<ephemeral>`; an acceptor
//!   thread spawns a reader thread per inbound connection.
//! - One outbound connection (and writer thread) per `(sender, peer)`
//!   pair, created on first send, with reconnect-and-backoff (10 ms
//!   doubling to 500 ms). A frame that cannot be delivered after the
//!   retry budget is dropped — exactly the failure mode the protocols
//!   already tolerate (their retry/learn machinery repairs losses).
//! - Frames are `[payload len: u32 LE][sender node id: u32 LE]` +
//!   payload (see [`simnet::wire`] for the payload format). Self-sends
//!   short-circuit through the node's inbound channel without touching
//!   a socket, like every other substrate.
//! - The receive path is zero-copy: a reader thread reads straight into
//!   its reassembly buffer, freezes the buffer into a refcounted
//!   [`Bytes`] once it holds complete frames, and decodes every payload
//!   as a slice of that one allocation — a `Put` value travels from
//!   socket to state machine without its bytes ever being copied. The
//!   frozen buffer is reclaimed for the next read as soon as no decoded
//!   message still borrows it.
//!
//! Unlike the simulator this substrate is *not* deterministic — it
//! measures real sockets, real syscalls, and real thread scheduling.
//! Per-node sent/received counters and per-label delivery counts come
//! back in [`NetRunStats`] so runs remain comparable with simulator
//! metrics.

use crate::{node_loop, Inbound, RuntimeStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use simnet::{Actor, Bytes, Message, NodeId, Wire};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes before the payload in every transport frame: payload length
/// (u32) + sender node id (u32).
const FRAME_PREFIX: usize = 8;
/// Ceiling on a single frame's payload; a corrupted length prefix must
/// not trigger a huge allocation.
const MAX_FRAME: usize = 64 * 1024 * 1024;
/// How long a parked reader/writer sleeps between liveness checks.
const IDLE_POLL: Duration = Duration::from_millis(25);
/// First reconnect delay; doubles per failed attempt up to
/// [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(10);
/// Reconnect delay ceiling.
const MAX_BACKOFF: Duration = Duration::from_millis(500);
/// Connect/write attempts per frame before it is dropped.
const MAX_ATTEMPTS: u32 = 20;
/// Ceiling on buffers retained per node by the opt-in frame pool.
const POOL_CAP: usize = 64;
/// Reader-side granularity: initial receive-buffer size and the step a
/// buffer grows by when a frame straddles its end.
const READ_CHUNK: usize = 64 * 1024;

/// True when `PIG_NET_POOL` requests pooled frame buffers (any value
/// but `0`). Off by default: the pool changes no bytes on the wire
/// (asserted by `pooled_frames_are_byte_identical`), but it stays
/// opt-in until the perf gate has tracked it across environments.
pub fn frame_pooling_enabled() -> bool {
    std::env::var_os("PIG_NET_POOL").is_some_and(|v| v != "0")
}

/// A bounded free-list of spent frame buffers, shared between a node's
/// sender and its writer threads. With pooling enabled, every frame a
/// writer finishes with returns here and the next send reuses its
/// capacity — the steady-state send path stops allocating entirely.
/// Disabled, `get` is exactly the old `Vec::with_capacity` path.
struct FramePool {
    enabled: bool,
    free: Mutex<Vec<Vec<u8>>>,
}

impl FramePool {
    fn new(enabled: bool) -> Self {
        FramePool {
            enabled,
            free: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, capacity: usize) -> Vec<u8> {
        if self.enabled {
            if let Some(mut buf) = self.free.lock().pop() {
                buf.clear();
                buf.reserve(capacity);
                return buf;
            }
        }
        Vec::with_capacity(capacity)
    }

    fn put(&self, buf: Vec<u8>) {
        if !self.enabled {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < POOL_CAP {
            free.push(buf);
        }
    }
}

/// A full-length receive buffer of at least `min_len` bytes, drawn from
/// `pool`. Receive buffers keep `len == capacity` (zero-filled once at
/// acquisition) so `TcpStream::read` can write directly into
/// `buf[filled..]` with no staging chunk; the valid prefix is tracked
/// separately by the reader.
fn recv_buffer(pool: &FramePool, min_len: usize) -> Vec<u8> {
    let mut buf = pool.get(min_len.max(READ_CHUNK));
    let len = buf.capacity().max(min_len);
    buf.resize(len, 0);
    buf
}

/// Build one transport frame for `msg` from `from`, drawing the buffer
/// from `pool`: `[payload len u32 LE][sender u32 LE]` + encoded
/// payload. The bytes are a pure function of `(from, msg)` — pooling
/// only changes where the buffer came from.
fn encode_frame<M: Message + Wire>(from: NodeId, msg: &M, pool: &FramePool) -> Vec<u8> {
    let mut frame = pool.get(FRAME_PREFIX + msg.wire_size());
    frame.extend_from_slice(&[0u8; FRAME_PREFIX]);
    msg.encode_into(&mut frame);
    let payload_len = (frame.len() - FRAME_PREFIX) as u32;
    frame[..4].copy_from_slice(&payload_len.to_le_bytes());
    frame[4..8].copy_from_slice(&from.0.to_le_bytes());
    frame
}

/// Counters from a [`NetRuntime`] run — the socket substrate's
/// equivalent of the simulator's per-node message stats.
#[derive(Debug, Default, Clone)]
pub struct NetRunStats {
    /// Messages delivered to actors across all nodes (self-sends
    /// included).
    pub msgs_delivered: u64,
    /// Timers fired across all nodes.
    pub timers_fired: u64,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
    /// Messages received per node (indexed by node id).
    pub per_node_received: Vec<u64>,
    /// Deliveries per message label over the whole run.
    pub delivered_by_label: BTreeMap<&'static str, u64>,
    /// Encoded payload bytes that crossed a socket.
    pub bytes_sent: u64,
    /// Successful re-establishments of a dropped peer connection.
    pub reconnects: u64,
    /// Frames that failed to decode (0 on a healthy run — anything else
    /// means the wire schema disagrees with itself).
    pub decode_errors: u64,
    /// Frames dropped after exhausting the reconnect/retry budget.
    pub frames_dropped: u64,
}

struct NetMetrics {
    sent: Vec<AtomicU64>,
    received: Vec<AtomicU64>,
    labels: Mutex<BTreeMap<&'static str, u64>>,
    bytes_sent: AtomicU64,
    reconnects: AtomicU64,
    decode_errors: AtomicU64,
    frames_dropped: AtomicU64,
}

impl NetMetrics {
    fn new(n: usize) -> Self {
        NetMetrics {
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            labels: Mutex::new(BTreeMap::new()),
            bytes_sent: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            frames_dropped: AtomicU64::new(0),
        }
    }

    fn note_delivery(&self, to: NodeId, label: &'static str) {
        if let Some(c) = self.received.get(to.index()) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        *self.labels.lock().entry(label).or_insert(0) += 1;
    }
}

/// A thread-per-node, TCP-per-edge runtime for [`simnet::Actor`]s whose
/// message type implements [`Wire`].
///
/// Mirrors [`crate::Runtime`]'s API: `new(seed)`, `add_actor`,
/// `run_for(wall)` — the substrate really is one orthogonal axis.
pub struct NetRuntime<M: Message + Wire + Send + 'static> {
    seed: u64,
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
}

impl<M: Message + Wire + Send + 'static> NetRuntime<M> {
    /// New runtime; actors added next get node ids 0, 1, …
    pub fn new(seed: u64) -> Self {
        NetRuntime {
            seed,
            actors: Vec::new(),
        }
    }

    /// Register the next actor; returns its node id.
    pub fn add_actor(&mut self, actor: impl Actor<M> + Send + 'static) -> NodeId {
        let id = NodeId::from(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        id
    }

    /// Number of registered actors.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True when no actor has been added yet.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Run every actor on its own thread for `wall`, with TCP loopback
    /// sockets between nodes, then tear everything down and return the
    /// run's counters.
    pub fn run_for(&mut self, wall: Duration) -> NetRunStats {
        let n = self.actors.len();
        let metrics = Arc::new(NetMetrics::new(n));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(RuntimeStats::default()));
        // Reader/writer threads are spawned dynamically (per accepted
        // connection, per first-send edge); their handles land here so
        // teardown can join everything.
        let io_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // Inbound actor channels and listeners, all bound before any
        // actor starts so no node races its peers' listeners.
        let mut txs: Vec<Sender<Inbound<M>>> = Vec::with_capacity(n);
        let mut rxs: Vec<Option<Receiver<Inbound<M>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
            addrs.push(listener.local_addr().expect("listener addr"));
            listeners.push(listener);
        }
        let addrs = Arc::new(addrs);

        let pooling = frame_pooling_enabled();
        let mut acceptor_handles = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            acceptor_handles.push(spawn_acceptor(
                NodeId::from(i),
                listener,
                txs[i].clone(),
                metrics.clone(),
                stop.clone(),
                io_handles.clone(),
                Arc::new(FramePool::new(pooling)),
            ));
        }

        let epoch = Instant::now();
        let mut actor_handles = Vec::with_capacity(n);
        for i in 0..n {
            let actor = self.actors[i].take().expect("actor already running");
            let rx = rxs[i].take().expect("receiver already running");
            let node = NodeId::from(i);
            let seed = simnet::derive_node_seed(self.seed, i);
            let stats = stats.clone();
            let sender = NetSender {
                node,
                addrs: addrs.clone(),
                self_tx: txs[i].clone(),
                writers: HashMap::new(),
                metrics: metrics.clone(),
                stop: stop.clone(),
                io_handles: io_handles.clone(),
                pool: Arc::new(FramePool::new(pooling)),
            };
            actor_handles.push(std::thread::spawn(move || {
                let mut sender = sender;
                let outbound = move |to: NodeId, msg: M| sender.send(to, msg);
                node_loop(node, actor, rx, outbound, stats, epoch, seed);
            }));
        }

        std::thread::sleep(wall);
        stop.store(true, Ordering::SeqCst);
        for tx in &txs {
            let _ = tx.send(Inbound::Stop);
        }
        for h in actor_handles {
            let _ = h.join();
        }
        for h in acceptor_handles {
            let _ = h.join();
        }
        // Acceptors are joined, so no new io threads appear now.
        let io = std::mem::take(&mut *io_handles.lock());
        for h in io {
            let _ = h.join();
        }

        let rt = stats.lock().clone();
        let delivered_by_label = metrics.labels.lock().clone();
        NetRunStats {
            msgs_delivered: rt.msgs_delivered,
            timers_fired: rt.timers_fired,
            per_node_sent: metrics
                .sent
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            per_node_received: metrics
                .received
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            delivered_by_label,
            bytes_sent: metrics.bytes_sent.load(Ordering::Relaxed),
            reconnects: metrics.reconnects.load(Ordering::Relaxed),
            decode_errors: metrics.decode_errors.load(Ordering::Relaxed),
            frames_dropped: metrics.frames_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Per-node outbound side: owns one writer thread (and its queue) per
/// peer this node has sent to.
struct NetSender<M> {
    node: NodeId,
    addrs: Arc<Vec<SocketAddr>>,
    self_tx: Sender<Inbound<M>>,
    writers: HashMap<usize, Sender<Vec<u8>>>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    io_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Arc<FramePool>,
}

impl<M: Message + Wire + Send + 'static> NetSender<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        if let Some(c) = self.metrics.sent.get(self.node.index()) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if to == self.node {
            // Loopback within the node: no socket, like the other
            // substrates, but still a counted delivery.
            self.metrics.note_delivery(to, msg.label());
            let _ = self.self_tx.send(Inbound::Deliver {
                from: self.node,
                msg,
            });
            return;
        }
        let Some(&addr) = self.addrs.get(to.index()) else {
            return; // unknown destination: drop, as the simulator does
        };
        let frame = encode_frame(self.node, &msg, &self.pool);

        let writer = self.writers.entry(to.index()).or_insert_with(|| {
            let (tx, rx) = unbounded::<Vec<u8>>();
            let metrics = self.metrics.clone();
            let stop = self.stop.clone();
            let pool = self.pool.clone();
            let handle = std::thread::spawn(move || writer_loop(addr, rx, metrics, stop, pool));
            self.io_handles.lock().push(handle);
            tx
        });
        let _ = writer.send(frame);
    }
}

/// Outbound writer thread for one `(sender, peer)` edge: drains the
/// frame queue into a TCP stream, connecting lazily and reconnecting
/// with exponential backoff on failure.
fn writer_loop(
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    pool: Arc<FramePool>,
) {
    let mut stream: Option<TcpStream> = None;
    let mut connected_before = false;
    loop {
        let frame = match rx.recv_timeout(IDLE_POLL) {
            Ok(f) => f,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };

        let mut backoff = INITIAL_BACKOFF;
        let mut attempts = 0u32;
        loop {
            if attempts >= MAX_ATTEMPTS || (attempts > 0 && stop.load(Ordering::SeqCst)) {
                metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                break;
            }
            if stream.is_none() {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if connected_before {
                            metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_before = true;
                        stream = Some(s);
                    }
                    Err(_) => {
                        attempts += 1;
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(MAX_BACKOFF);
                        continue;
                    }
                }
            }
            match stream.as_mut().expect("connected").write_all(&frame) {
                Ok(()) => {
                    metrics
                        .bytes_sent
                        .fetch_add((frame.len() - FRAME_PREFIX) as u64, Ordering::Relaxed);
                    break;
                }
                Err(_) => {
                    stream = None; // reconnect and retry this frame
                    attempts += 1;
                }
            }
        }
        // Written or dropped either way: the buffer's capacity can be
        // reused by the next send (no-op unless pooling is enabled).
        pool.put(frame);
    }
}

/// Listener thread for one node: accepts inbound connections and hands
/// each to its own reader thread.
fn spawn_acceptor<M: Message + Wire + Send + 'static>(
    node: NodeId,
    listener: TcpListener,
    tx: Sender<Inbound<M>>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    io_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Arc<FramePool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((conn, _)) => {
                    let tx = tx.clone();
                    let metrics = metrics.clone();
                    let stop = stop.clone();
                    let pool = pool.clone();
                    let handle = std::thread::spawn(move || {
                        reader_loop(node, conn, tx, metrics, stop, pool)
                    });
                    io_handles.lock().push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    })
}

/// Reader thread for one inbound connection: reads straight into its
/// reassembly buffer (a short read never loses data — bytes accumulate
/// until a frame completes), then freezes and decodes complete frames
/// zero-copy via [`drain_frames`].
fn reader_loop<M: Message + Wire + Send>(
    node: NodeId,
    mut conn: TcpStream,
    tx: Sender<Inbound<M>>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    pool: Arc<FramePool>,
) {
    let _ = conn.set_read_timeout(Some(IDLE_POLL));
    let mut buf = recv_buffer(&pool, READ_CHUNK);
    let mut filled = 0usize;
    loop {
        if filled == buf.len() {
            // A frame straddles the buffer end: grow in place.
            buf.resize(filled + READ_CHUNK, 0);
        }
        match conn.read(&mut buf[filled..]) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                filled += n;
                drain_frames(node, &mut buf, &mut filled, &tx, &metrics, &pool);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Scan-and-freeze frame delivery. Finds every complete frame in
/// `buf[..filled]`, freezes the buffer into one refcounted [`Bytes`]
/// (an `Arc` around the existing allocation — no byte is copied), and
/// decodes each payload as a zero-copy slice of it. A partial frame at
/// the tail is carried into the next receive buffer; the frozen
/// allocation itself is reclaimed for reuse the moment no decoded
/// message still borrows it (vote traffic drops its slices immediately;
/// a decoded `Put` keeps the frame alive until the value leaves the
/// store — which is the point of zero-copy).
fn drain_frames<M: Message + Wire + Send>(
    node: NodeId,
    buf: &mut Vec<u8>,
    filled: &mut usize,
    tx: &Sender<Inbound<M>>,
    metrics: &NetMetrics,
    pool: &FramePool,
) {
    // Pass 1: walk the length prefixes to find the end of the last
    // complete frame. No payload is touched.
    let mut consumed = 0;
    let mut corrupt = false;
    while *filled - consumed >= FRAME_PREFIX {
        let len = u32::from_le_bytes(buf[consumed..consumed + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            // Unrecoverable framing corruption: count it, deliver what
            // preceded it, and drop the poisoned bytes.
            corrupt = true;
            break;
        }
        if *filled - consumed < FRAME_PREFIX + len {
            break; // incomplete frame; wait for more bytes
        }
        consumed += FRAME_PREFIX + len;
    }
    if corrupt {
        metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
    }
    if consumed == 0 {
        if corrupt {
            *filled = 0;
        }
        return;
    }
    let tail = if corrupt { 0 } else { *filled - consumed };

    // Pass 2: freeze the buffer and decode every payload as a slice of
    // the shared frame.
    let frozen = Bytes::from(std::mem::take(buf));
    let mut off = 0;
    while off < consumed {
        let s = frozen.as_slice();
        let len = u32::from_le_bytes(s[off..off + 4].try_into().unwrap()) as usize;
        let from = NodeId(u32::from_le_bytes(s[off + 4..off + 8].try_into().unwrap()));
        let payload = frozen.slice(off + FRAME_PREFIX..off + FRAME_PREFIX + len);
        match M::decode_frame(&payload) {
            Ok(msg) => {
                metrics.note_delivery(node, msg.label());
                let _ = tx.send(Inbound::Deliver { from, msg });
            }
            Err(_) => {
                metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        off += FRAME_PREFIX + len;
    }

    // Restore a receive buffer. If every decoded slice has already been
    // dropped the frozen allocation comes straight back; otherwise some
    // message still pins it and a fresh buffer takes over.
    if tail > 0 {
        let mut next = recv_buffer(pool, tail);
        next[..tail].copy_from_slice(&frozen.as_slice()[consumed..consumed + tail]);
        if let Ok(v) = frozen.try_reclaim() {
            pool.put(v);
        }
        *buf = next;
    } else {
        *buf = frozen
            .try_reclaim()
            .unwrap_or_else(|_| recv_buffer(pool, READ_CHUNK));
    }
    *filled = tail;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Context, SimDuration, TimerId, WireError, WireHeader, WireReader};

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn wire_size(&self) -> usize {
            32
        }
        fn label(&self) -> &'static str {
            "num"
        }
    }
    impl Wire for Num {
        fn encode_into(&self, out: &mut Vec<u8>) {
            let mut h = WireHeader::new(9, 0);
            h.aux1 = self.0;
            h.encode_into(out);
            out.extend_from_slice(&[0u8; 8]);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            let h = WireHeader::decode(r)?;
            r.bytes(8, "pad")?;
            Ok(Num(h.aux1))
        }
    }

    struct Pinger {
        peer: NodeId,
        next: u64,
    }
    impl Actor<Num> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Num>) {
            ctx.send(self.peer, Num(self.next));
        }
        fn on_message(&mut self, from: NodeId, msg: Num, ctx: &mut Context<Num>) {
            self.next = msg.0 + 1;
            ctx.send(from, Num(self.next));
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Num>) {}
    }

    #[test]
    fn ping_pong_over_loopback_tcp() {
        let mut rt: NetRuntime<Num> = NetRuntime::new(7);
        rt.add_actor(Pinger {
            peer: NodeId(1),
            next: 0,
        });
        rt.add_actor(Pinger {
            peer: NodeId(0),
            next: 0,
        });
        assert_eq!(rt.len(), 2);
        let stats = rt.run_for(Duration::from_millis(300));
        assert!(
            stats.msgs_delivered > 50,
            "expected a busy ping-pong, got {} deliveries",
            stats.msgs_delivered
        );
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.per_node_sent.len(), 2);
        assert!(stats.per_node_sent.iter().all(|&s| s > 0));
        assert!(stats.per_node_received.iter().all(|&r| r > 0));
        // Labels are counted at decode time; frames still queued in the
        // inbound channel at shutdown are decoded but never delivered,
        // so the label count can only exceed deliveries.
        let num = stats.delivered_by_label.get("num").copied().unwrap_or(0);
        assert!(
            num >= stats.msgs_delivered,
            "label count {num} < deliveries {}",
            stats.msgs_delivered
        );
        // 32 bytes per message, every one over a real socket.
        assert!(stats.bytes_sent >= 32 * stats.msgs_delivered);
        assert_eq!(stats.bytes_sent % 32, 0);
    }

    struct SelfSender {
        sent: bool,
    }
    impl Actor<Num> for SelfSender {
        fn on_start(&mut self, ctx: &mut Context<Num>) {
            let me = ctx.node();
            ctx.send(me, Num(1));
        }
        fn on_message(&mut self, _f: NodeId, _m: Num, ctx: &mut Context<Num>) {
            if !self.sent {
                self.sent = true;
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Num>) {}
    }

    #[test]
    fn self_sends_skip_the_socket_but_count() {
        let mut rt: NetRuntime<Num> = NetRuntime::new(8);
        rt.add_actor(SelfSender { sent: false });
        let stats = rt.run_for(Duration::from_millis(60));
        assert_eq!(stats.per_node_sent, vec![1]);
        assert_eq!(stats.per_node_received, vec![1]);
        assert_eq!(stats.bytes_sent, 0, "no socket traffic for self-sends");
        assert!(stats.timers_fired >= 1);
    }

    #[test]
    fn pooled_frames_are_byte_identical() {
        let fresh = FramePool::new(false);
        let pooled = FramePool::new(true);
        // Seed the pool with a dirty, over-sized spent buffer so reuse
        // actually exercises the clear+reserve path.
        pooled.put(vec![0xAAu8; 4096]);
        for seq in [0u64, 1, 42, u64::MAX] {
            let msg = Num(seq);
            let a = encode_frame(NodeId(3), &msg, &fresh);
            let b = encode_frame(NodeId(3), &msg, &pooled);
            assert_eq!(a, b, "pooling changed the bytes of frame {seq}");
            // Return the frame as writer_loop does; the next iteration
            // reuses it.
            pooled.put(b);
        }
        // The frame layout itself: [len][sender] prefix then payload.
        let frame = encode_frame(NodeId(7), &Num(5), &fresh);
        let payload_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let sender = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        assert_eq!(payload_len, frame.len() - FRAME_PREFIX);
        assert_eq!(sender, 7);
    }

    fn drain_all(msgs: &[u64], cut: usize) -> (Vec<(NodeId, u64)>, u64) {
        let (tx, rx) = unbounded::<Inbound<Num>>();
        let metrics = NetMetrics::new(2);
        let pool = FramePool::new(false);
        let mut stream = Vec::new();
        for &m in msgs {
            stream.extend_from_slice(&encode_frame(NodeId(1), &Num(m), &pool));
        }
        let mut buf = recv_buffer(&pool, stream.len().max(READ_CHUNK));
        let mut filled = 0;
        for part in [&stream[..cut], &stream[cut..]] {
            buf[filled..filled + part.len()].copy_from_slice(part);
            filled += part.len();
            drain_frames(NodeId(0), &mut buf, &mut filled, &tx, &metrics, &pool);
        }
        assert_eq!(filled, 0, "no partial frame left at stream end");
        let mut got = Vec::new();
        while let Ok(i) = rx.try_recv() {
            match i {
                Inbound::Deliver { from, msg } => got.push((from, msg.0)),
                _ => panic!("unexpected inbound"),
            }
        }
        (got, metrics.decode_errors.load(Ordering::Relaxed))
    }

    #[test]
    fn drain_reassembles_frames_split_at_any_point() {
        let msgs = [7u64, 8, 9];
        let total = msgs.len() * encode_frame(NodeId(1), &Num(0), &FramePool::new(false)).len();
        for cut in [0, 3, FRAME_PREFIX, FRAME_PREFIX + 1, total / 2, total - 1] {
            let (got, errors) = drain_all(&msgs, cut);
            let want: Vec<(NodeId, u64)> = msgs.iter().map(|&m| (NodeId(1), m)).collect();
            assert_eq!(got, want, "split at byte {cut}");
            assert_eq!(errors, 0);
        }
    }

    #[test]
    fn oversized_length_prefix_counts_error_and_resets() {
        let (tx, _rx) = unbounded::<Inbound<Num>>();
        let metrics = NetMetrics::new(1);
        let pool = FramePool::new(false);
        let mut buf = recv_buffer(&pool, READ_CHUNK);
        buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        let mut filled = FRAME_PREFIX;
        drain_frames::<Num>(NodeId(0), &mut buf, &mut filled, &tx, &metrics, &pool);
        assert_eq!(filled, 0, "poisoned bytes dropped");
        assert_eq!(metrics.decode_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn frame_pool_caps_retained_buffers() {
        let pool = FramePool::new(true);
        for _ in 0..(POOL_CAP + 10) {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.free.lock().len(), POOL_CAP);
        // Disabled pools retain nothing.
        let off = FramePool::new(false);
        off.put(Vec::with_capacity(64));
        assert!(off.free.lock().is_empty());
        assert_eq!(off.get(16).capacity(), 16);
    }
}
