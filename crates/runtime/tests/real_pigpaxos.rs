//! The acid test for runtime-agnosticism: a full PigPaxos cluster with
//! closed-loop clients running on real OS threads — the same replica
//! and client code the simulator drives.

use paxi::{ClientRecorder, ClosedLoopClient, ClusterConfig, TargetPolicy, Workload};
use pig_runtime::Runtime;
use pigpaxos::{PigConfig, PigMsg, PigReplica};
use simnet::{NodeId, SimDuration};
use std::time::Duration;

#[test]
fn pigpaxos_commits_on_real_threads() {
    let n = 5;
    let cluster = ClusterConfig::new(n);
    let mut rt: Runtime<paxi::Envelope<PigMsg>> = Runtime::new(7);
    for i in 0..n {
        rt.add_actor(paxi::ReplicaActor(PigReplica::new(
            NodeId::from(i),
            cluster.clone(),
            PigConfig::lan(2),
        )));
    }
    let recorder = ClientRecorder::new();
    for _ in 0..4 {
        rt.add_actor(ClosedLoopClient::<PigMsg>::new(
            TargetPolicy::Fixed(NodeId(0)),
            Workload::paper_default(),
            recorder.clone(),
            SimDuration::from_millis(500),
        ));
    }

    rt.run_for(Duration::from_millis(500));

    cluster.safety.assert_safe();
    let completed = recorder.len();
    assert!(
        completed > 50,
        "expected real commits over threads, got {completed}"
    );
    assert!(cluster.safety.decided_count() > 50);
}

#[test]
fn paxos_commits_on_real_threads() {
    use paxos::{PaxosConfig, PaxosReplica};
    let n = 3;
    let cluster = ClusterConfig::new(n);
    let mut rt: Runtime<paxi::Envelope<paxos::PaxosMsg>> = Runtime::new(8);
    for i in 0..n {
        rt.add_actor(paxi::ReplicaActor(PaxosReplica::new(
            NodeId::from(i),
            cluster.clone(),
            PaxosConfig::lan(),
        )));
    }
    let recorder = ClientRecorder::new();
    rt.add_actor(ClosedLoopClient::<paxos::PaxosMsg>::new(
        TargetPolicy::Fixed(NodeId(0)),
        Workload::paper_default(),
        recorder.clone(),
        SimDuration::from_millis(500),
    ));

    rt.run_for(Duration::from_millis(400));

    cluster.safety.assert_safe();
    assert!(recorder.len() > 20, "got {}", recorder.len());
}
