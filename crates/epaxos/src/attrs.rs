//! Interference tracking and attribute computation.
//!
//! EPaxos orders only *interfering* commands (same key, at least one
//! write). Each replica maintains, per key, the most recent instance
//! that touched it; a new command's dependencies are the latest
//! interfering instances, and its sequence number exceeds theirs.

use crate::messages::{Attrs, InstanceId};
use paxi::{Key, Operation};
use std::collections::HashMap;

#[derive(Debug, Default, Clone, Copy)]
struct KeyInfo {
    last_any: Option<(InstanceId, u64)>, // last read or write + its seq
    last_write: Option<(InstanceId, u64)>, // last write + its seq
}

/// Per-replica interference index.
#[derive(Debug, Default)]
pub struct InterferenceIndex {
    by_key: HashMap<Key, KeyInfo>,
}

impl InterferenceIndex {
    /// Empty index.
    pub fn new() -> Self {
        InterferenceIndex::default()
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no key has been seen.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Compute attributes for a new command given local knowledge:
    /// a write depends on the last instance touching the key (read or
    /// write); a read depends only on the last write.
    pub fn attrs_for(&self, op: &Operation) -> Attrs {
        let Some(key) = op.key() else {
            return Attrs::default(); // noops interfere with nothing
        };
        let info = match self.by_key.get(&key) {
            Some(i) => *i,
            None => return Attrs::default(),
        };
        let dep = if op.is_read() {
            info.last_write
        } else {
            info.last_any
        };
        match dep {
            Some((inst, seq)) => Attrs {
                seq: seq + 1,
                deps: vec![inst],
            },
            None => Attrs::default(),
        }
    }

    /// Record that `inst` (with final-or-tentative seq) touches the key
    /// of `op`.
    pub fn record(&mut self, inst: InstanceId, seq: u64, op: &Operation) {
        let Some(key) = op.key() else { return };
        let info = self.by_key.entry(key).or_default();
        let newer = |cur: Option<(InstanceId, u64)>| match cur {
            Some((_, s)) if s >= seq => cur,
            _ => Some((inst, seq)),
        };
        info.last_any = newer(info.last_any);
        if !op.is_read() {
            info.last_write = newer(info.last_write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::Value;
    use simnet::NodeId;

    fn inst(r: u32, s: u64) -> InstanceId {
        InstanceId {
            replica: NodeId(r),
            slot: s,
        }
    }

    fn put(k: Key) -> Operation {
        Operation::Put(k, Value::zeros(1))
    }

    #[test]
    fn first_command_has_no_deps() {
        let idx = InterferenceIndex::new();
        let a = idx.attrs_for(&put(1));
        assert_eq!(a, Attrs::default());
    }

    #[test]
    fn write_depends_on_last_any() {
        let mut idx = InterferenceIndex::new();
        idx.record(inst(0, 0), 1, &Operation::Get(1));
        let a = idx.attrs_for(&put(1));
        assert_eq!(a.deps, vec![inst(0, 0)], "write depends on prior read");
        assert_eq!(a.seq, 2);
    }

    #[test]
    fn read_depends_only_on_last_write() {
        let mut idx = InterferenceIndex::new();
        idx.record(inst(0, 0), 1, &put(1));
        idx.record(inst(0, 1), 2, &Operation::Get(1));
        let a = idx.attrs_for(&Operation::Get(1));
        assert_eq!(a.deps, vec![inst(0, 0)], "read-read does not interfere");
        assert_eq!(a.seq, 2);
    }

    #[test]
    fn different_keys_independent() {
        let mut idx = InterferenceIndex::new();
        idx.record(inst(0, 0), 1, &put(1));
        let a = idx.attrs_for(&put(2));
        assert!(a.deps.is_empty());
    }

    #[test]
    fn record_keeps_highest_seq() {
        let mut idx = InterferenceIndex::new();
        idx.record(inst(0, 5), 10, &put(1));
        idx.record(inst(1, 0), 3, &put(1)); // lower seq: ignored
        let a = idx.attrs_for(&put(1));
        assert_eq!(a.deps, vec![inst(0, 5)]);
        assert_eq!(a.seq, 11);
    }

    #[test]
    fn noop_has_no_interference() {
        let mut idx = InterferenceIndex::new();
        idx.record(inst(0, 0), 1, &put(1));
        assert_eq!(idx.attrs_for(&Operation::Noop), Attrs::default());
        idx.record(inst(0, 1), 2, &Operation::Noop); // no-op record
        assert_eq!(idx.len(), 1);
    }
}
