//! EPaxos wire messages.
//!
//! Every command lives in an *instance* owned by the replica that
//! received it from a client. Instances carry attributes `(seq, deps)`
//! used to order interfering commands at execution time. Messages are
//! larger than Multi-Paxos messages because attributes travel with every
//! phase — one of the overheads the paper's comparison surfaces.

use paxi::wire::{decode_command_body, encode_command_body, op_tag};
use paxi::{Ballot, Command, ProtoMessage, HEADER_BYTES};
use simnet::wire::DOMAIN_EPAXOS;
use simnet::{NodeId, Wire, WireError, WireHeader, WirePut, WireReader};
use std::fmt;

/// Identifies one EPaxos instance: `(owning replica, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The replica that leads this instance.
    pub replica: NodeId,
    /// Slot within that replica's instance space.
    pub slot: u64,
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.replica, self.slot)
    }
}

/// Attributes assigned to a command: a sequence number and the set of
/// interfering instances it must be ordered against.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Attrs {
    /// Lamport-style sequence number (max over deps + 1).
    pub seq: u64,
    /// Interfering instances this command depends on.
    pub deps: Vec<InstanceId>,
}

impl Attrs {
    /// Merge another attribute set into this one (union deps, max seq).
    /// Returns true if anything changed.
    pub fn merge(&mut self, other: &Attrs) -> bool {
        let mut changed = false;
        if other.seq > self.seq {
            self.seq = other.seq;
            changed = true;
        }
        for d in &other.deps {
            if !self.deps.contains(d) {
                self.deps.push(*d);
                changed = true;
            }
        }
        if changed {
            self.deps.sort();
        }
        changed
    }

    /// Serialized size contribution.
    pub fn wire_bytes(&self) -> usize {
        8 + self.deps.len() * 12
    }
}

/// EPaxos protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum EpaxosMsg {
    /// Command leader → replicas: propose a command with initial attrs.
    PreAccept {
        /// The instance.
        inst: InstanceId,
        /// Instance ballot (0 for the initial owner round).
        ballot: Ballot,
        /// The command.
        command: Command,
        /// Leader-computed attributes.
        attrs: Attrs,
    },
    /// Replica → command leader: possibly-updated attributes.
    PreAcceptOk {
        /// The instance.
        inst: InstanceId,
        /// The replying node.
        node: NodeId,
        /// Attributes after merging the replica's local interference.
        attrs: Attrs,
        /// Whether the replica changed the attributes.
        changed: bool,
    },
    /// Slow path: fix the final attributes with a majority.
    Accept {
        /// The instance.
        inst: InstanceId,
        /// Instance ballot.
        ballot: Ballot,
        /// The command.
        command: Command,
        /// Final attributes.
        attrs: Attrs,
    },
    /// Slow-path acknowledgement.
    AcceptOk {
        /// The instance.
        inst: InstanceId,
        /// The replying node.
        node: NodeId,
    },
    /// Commit notification broadcast to everyone.
    Commit {
        /// The instance.
        inst: InstanceId,
        /// The command.
        command: Command,
        /// Final attributes.
        attrs: Attrs,
    },
}

impl ProtoMessage for EpaxosMsg {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                EpaxosMsg::PreAccept { command, attrs, .. } => {
                    12 + 8 + command.payload_bytes() + attrs.wire_bytes()
                }
                EpaxosMsg::PreAcceptOk { attrs, .. } => 12 + 4 + 1 + attrs.wire_bytes(),
                EpaxosMsg::Accept { command, attrs, .. } => {
                    12 + 8 + command.payload_bytes() + attrs.wire_bytes()
                }
                EpaxosMsg::AcceptOk { .. } => 12 + 4,
                EpaxosMsg::Commit { command, attrs, .. } => {
                    12 + command.payload_bytes() + attrs.wire_bytes()
                }
            }
    }

    fn label(&self) -> &'static str {
        match self {
            EpaxosMsg::PreAccept { .. } => "preaccept",
            EpaxosMsg::PreAcceptOk { .. } => "preaccept_ok",
            EpaxosMsg::Accept { .. } => "accept",
            EpaxosMsg::AcceptOk { .. } => "accept_ok",
            EpaxosMsg::Commit { .. } => "commit",
        }
    }
}

const KIND_PREACCEPT: u8 = 0;
const KIND_PREACCEPT_OK: u8 = 1;
const KIND_ACCEPT: u8 = 2;
const KIND_ACCEPT_OK: u8 = 3;
const KIND_COMMIT: u8 = 4;

impl Wire for InstanceId {
    const KIND: &'static str = "InstanceId";

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.replica.0);
        out.put_u64(self.slot);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(InstanceId {
            replica: NodeId(r.u32("inst.replica")?),
            slot: r.u64("inst.slot")?,
        })
    }
}

/// Attrs encode as `seq: u64` + the deps (12 bytes each); the dep
/// *count* rides in the enclosing message's header `aux0`, so the body
/// is exactly [`Attrs::wire_bytes`] bytes.
fn encode_attrs(attrs: &Attrs, out: &mut Vec<u8>) {
    out.put_u64(attrs.seq);
    for d in &attrs.deps {
        d.encode_into(out);
    }
}

fn decode_attrs(n_deps: u32, r: &mut WireReader<'_>) -> Result<Attrs, WireError> {
    let seq = r.u64("attrs.seq")?;
    // 4 replica + 8 slot per dep.
    let mut deps = Vec::with_capacity(r.capacity_for(n_deps as usize, 12));
    for _ in 0..n_deps {
        deps.push(InstanceId::decode(r)?);
    }
    Ok(Attrs { seq, deps })
}

fn header(kind: u8, attrs: &Attrs) -> WireHeader {
    WireHeader::new(DOMAIN_EPAXOS, kind).aux0(attrs.deps.len() as u32)
}

impl Wire for EpaxosMsg {
    const KIND: &'static str = "EpaxosMsg";

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            EpaxosMsg::PreAccept {
                inst,
                ballot,
                command,
                attrs,
            }
            | EpaxosMsg::Accept {
                inst,
                ballot,
                command,
                attrs,
            } => {
                let kind = if matches!(self, EpaxosMsg::PreAccept { .. }) {
                    KIND_PREACCEPT
                } else {
                    KIND_ACCEPT
                };
                header(kind, attrs)
                    .flags(op_tag(&command.op))
                    .encode_into(out);
                inst.encode_into(out);
                ballot.encode_into(out);
                encode_attrs(attrs, out);
                encode_command_body(command, out);
            }
            EpaxosMsg::PreAcceptOk {
                inst,
                node,
                attrs,
                changed,
            } => {
                header(KIND_PREACCEPT_OK, attrs).encode_into(out);
                inst.encode_into(out);
                out.put_u32(node.0);
                out.put_u8(*changed as u8);
                encode_attrs(attrs, out);
            }
            EpaxosMsg::AcceptOk { inst, node } => {
                WireHeader::new(DOMAIN_EPAXOS, KIND_ACCEPT_OK).encode_into(out);
                inst.encode_into(out);
                out.put_u32(node.0);
            }
            EpaxosMsg::Commit {
                inst,
                command,
                attrs,
            } => {
                header(KIND_COMMIT, attrs)
                    .flags(op_tag(&command.op))
                    .encode_into(out);
                inst.encode_into(out);
                encode_attrs(attrs, out);
                encode_command_body(command, out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let h = WireHeader::decode(r)?;
        match h.kind {
            KIND_PREACCEPT | KIND_ACCEPT => {
                let inst = InstanceId::decode(r)?;
                let ballot = Ballot::decode(r)?;
                let attrs = decode_attrs(h.aux0, r)?;
                let command = decode_command_body(h.flags, None, r)?;
                Ok(if h.kind == KIND_PREACCEPT {
                    EpaxosMsg::PreAccept {
                        inst,
                        ballot,
                        command,
                        attrs,
                    }
                } else {
                    EpaxosMsg::Accept {
                        inst,
                        ballot,
                        command,
                        attrs,
                    }
                })
            }
            KIND_PREACCEPT_OK => {
                let inst = InstanceId::decode(r)?;
                let node = NodeId(r.u32("preaccept_ok.node")?);
                let changed = r.u8("preaccept_ok.changed")? != 0;
                Ok(EpaxosMsg::PreAcceptOk {
                    inst,
                    node,
                    attrs: decode_attrs(h.aux0, r)?,
                    changed,
                })
            }
            KIND_ACCEPT_OK => Ok(EpaxosMsg::AcceptOk {
                inst: InstanceId::decode(r)?,
                node: NodeId(r.u32("accept_ok.node")?),
            }),
            KIND_COMMIT => {
                let inst = InstanceId::decode(r)?;
                let attrs = decode_attrs(h.aux0, r)?;
                let command = decode_command_body(h.flags, None, r)?;
                Ok(EpaxosMsg::Commit {
                    inst,
                    command,
                    attrs,
                })
            }
            other => Err(WireError::BadTag {
                what: "epaxos kind",
                got: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Operation, RequestId, Value};

    fn inst(r: u32, s: u64) -> InstanceId {
        InstanceId {
            replica: NodeId(r),
            slot: s,
        }
    }

    #[test]
    fn attrs_merge_unions_deps_and_maxes_seq() {
        let mut a = Attrs {
            seq: 3,
            deps: vec![inst(0, 1)],
        };
        let b = Attrs {
            seq: 5,
            deps: vec![inst(0, 1), inst(1, 2)],
        };
        assert!(a.merge(&b));
        assert_eq!(a.seq, 5);
        assert_eq!(a.deps, vec![inst(0, 1), inst(1, 2)]);
        // Merging again changes nothing.
        assert!(!a.merge(&b));
    }

    #[test]
    fn attrs_merge_keeps_higher_seq() {
        let mut a = Attrs {
            seq: 9,
            deps: vec![],
        };
        let b = Attrs {
            seq: 2,
            deps: vec![],
        };
        assert!(!a.merge(&b));
        assert_eq!(a.seq, 9);
    }

    #[test]
    fn message_sizes_grow_with_deps() {
        let cmd = Command {
            id: RequestId {
                client: NodeId(9),
                seq: 1,
            },
            op: Operation::Put(1, Value::zeros(8)),
        };
        let small = EpaxosMsg::PreAccept {
            inst: inst(0, 0),
            ballot: Ballot::ZERO,
            command: cmd.clone(),
            attrs: Attrs::default(),
        };
        let big = EpaxosMsg::PreAccept {
            inst: inst(0, 0),
            ballot: Ballot::ZERO,
            command: cmd,
            attrs: Attrs {
                seq: 1,
                deps: (0..10).map(|i| inst(1, i)).collect(),
            },
        };
        assert_eq!(big.wire_size() - small.wire_size(), 120);
    }

    #[test]
    fn instance_ordering() {
        assert!(inst(0, 5) < inst(1, 0));
        assert!(inst(1, 0) < inst(1, 1));
        assert_eq!(format!("{}", inst(2, 7)), "n2.7");
    }
}
