//! EPaxos cost/tuning configuration.

use paxi::SnapshotConfig;
use simnet::SimDuration;

/// EPaxos processing-cost knobs.
///
/// EPaxos does much more per-command bookkeeping than Multi-Paxos:
/// interference lookups on every PreAccept/Accept, and dependency-graph
/// analysis on every commit. These constants charge that work to the
/// simulated CPU. `graph_visit_cost` in particular reproduces the
/// behaviour the paper reports — under load the committed-but-unexecuted
/// window grows, graph analysis gets more expensive, and throughput
/// collapses ("conflict resolution … draining the resources of every
/// node", §5.4).
#[derive(Debug, Clone)]
pub struct EpaxosConfig {
    /// Cost of applying one command to the state machine.
    pub exec_cost: SimDuration,
    /// Cost per attribute/interference computation (PreAccept, Accept).
    pub attr_cost: SimDuration,
    /// Cost per instance visited during execution planning.
    pub graph_visit_cost: SimDuration,
    /// Instance-table compaction policy. EPaxos has no slot log; the
    /// analogous unbounded structure is the instance table, so
    /// `interval_ops` counts *executed instances* since the last sweep
    /// and a sweep drops every instance below the per-origin-replica
    /// contiguous executed frontier (`interval_bytes` is ignored — the
    /// table is instance-, not byte-, shaped). Disabled by default.
    pub snapshot: SnapshotConfig,
}

impl Default for EpaxosConfig {
    fn default() -> Self {
        // Calibrated against the paper's measurements (Fig. 8/10), where
        // the authors' Go implementation saturates near 1000–1500 req/s
        // regardless of cluster size because every replica performs
        // interference tracking and dependency-graph work for every
        // command. A hand-optimized EPaxos could do better; these
        // constants reproduce the system the paper measured. See
        // DESIGN.md §2 and EXPERIMENTS.md.
        EpaxosConfig {
            exec_cost: SimDuration::from_micros(40),
            attr_cost: SimDuration::from_micros(150),
            graph_visit_cost: SimDuration::from_micros(400),
            snapshot: SnapshotConfig::disabled(),
        }
    }
}

impl EpaxosConfig {
    /// Fluent helper: enable instance-table compaction with the given
    /// policy (only `interval_ops` applies; see the field docs).
    pub fn with_snapshots(mut self, snapshot: SnapshotConfig) -> Self {
        self.snapshot = snapshot;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = EpaxosConfig::default();
        assert!(c.exec_cost > SimDuration::ZERO);
        assert!(c.attr_cost > SimDuration::ZERO);
        assert!(c.graph_visit_cost > SimDuration::ZERO);
    }
}
