//! # epaxos — Egalitarian Paxos baseline
//!
//! The leaderless consensus protocol (Moraru et al., SOSP'13) the
//! PigPaxos paper compares against in Figs. 8 and 10. Any replica leads
//! the commands it receives; interfering commands gain dependencies and
//! are linearized at execution time via strongly-connected-component
//! analysis of the dependency graph.
//!
//! See [`replica::EpaxosReplica`] for the protocol walkthrough and the
//! scope note on recovery.

#![warn(missing_docs)]

pub mod attrs;
pub mod config;
pub mod graph;
pub mod messages;
pub mod replica;

pub use attrs::InterferenceIndex;
pub use config::EpaxosConfig;
pub use graph::{plan_execution, ExecutionPlan, InstStatus, InstanceView};
pub use messages::{Attrs, EpaxosMsg, InstanceId};
pub use replica::EpaxosReplica;
