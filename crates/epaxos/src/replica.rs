//! The EPaxos replica.
//!
//! Every replica is an opportunistic command leader (paper §2.3): the
//! replica a client contacts runs PreAccept against a fast quorum; if
//! all members agree on the command's attributes it commits in one round
//! (fast path), otherwise it fixes the attributes with a majority Accept
//! round (slow path) and then commits. Committed instances execute via
//! dependency-graph linearization ([`crate::graph`]).
//!
//! Scope note: explicit-prepare recovery (taking over another replica's
//! instance after its crash) is not implemented — the paper's EPaxos
//! experiments are failure-free, and recovery does not affect any
//! measured figure. Safety of the implemented paths is still
//! machine-checked by [`paxi::SafetyMonitor`].

use crate::attrs::InterferenceIndex;
use crate::config::EpaxosConfig;
use crate::graph::{plan_execution, InstStatus, InstanceView};
use crate::messages::{Attrs, EpaxosMsg, InstanceId};
use paxi::{
    fast_quorum, majority, Ballot, ClientReply, ClientRequest, ClusterConfig, Command, Ctx,
    Envelope, KvStore, Replica, ReplicaActor, ReplicaCtx, RequestId, SessionTable,
};
use simnet::{Actor, NodeId, TimerId};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    PreAccepted,
    Accepted,
    Committed,
    Executed,
}

#[derive(Debug)]
struct Instance {
    command: Command,
    attrs: Attrs,
    phase: Phase,
    // Owner-side tallies.
    preaccept_oks: usize,
    any_changed: bool,
    accept_oks: usize,
    client: Option<NodeId>,
}

/// Instance table + per-origin compaction floors: instances below an
/// origin's floor were executed and swept away, so the planner must see
/// them as `Executed` (not `Unknown`, which would block dependents
/// forever).
struct TableView<'a>(&'a HashMap<InstanceId, Instance>, &'a HashMap<NodeId, u64>);

impl InstanceView for TableView<'_> {
    fn status(&self, id: InstanceId) -> InstStatus {
        if id.slot < self.1.get(&id.replica).copied().unwrap_or(0) {
            return InstStatus::Executed;
        }
        match self.0.get(&id).map(|i| i.phase) {
            None => InstStatus::Unknown,
            Some(Phase::PreAccepted) | Some(Phase::Accepted) => InstStatus::Tentative,
            Some(Phase::Committed) => InstStatus::Committed,
            Some(Phase::Executed) => InstStatus::Executed,
        }
    }
    fn deps(&self, id: InstanceId) -> &[InstanceId] {
        self.0
            .get(&id)
            .map(|i| i.attrs.deps.as_slice())
            .unwrap_or(&[])
    }
    fn seq(&self, id: InstanceId) -> u64 {
        self.0.get(&id).map(|i| i.attrs.seq).unwrap_or(0)
    }
}

/// An EPaxos replica.
pub struct EpaxosReplica {
    me: NodeId,
    cluster: ClusterConfig,
    cfg: EpaxosConfig,
    instances: HashMap<InstanceId, Instance>,
    next_slot: u64,
    interference: InterferenceIndex,
    kv: KvStore,
    /// Committed-but-unexecuted instances (the execution frontier).
    unexecuted: BTreeSet<InstanceId>,
    /// Recently executed replies per client, for exactly-once retry
    /// replay (mirrors the Paxos/PigPaxos replicas): a retried command
    /// is answered from the cache instead of becoming a new instance.
    sessions: SessionTable,
    /// Own in-flight instances by request id, so a retry arriving
    /// before commit attaches to the existing instance.
    in_flight: HashMap<RequestId, InstanceId>,
    /// Per-origin-replica contiguous executed frontier: every instance
    /// `(r, slot)` with `slot < executed_floor[r]` was executed and
    /// compacted out of the table. The EPaxos analogue of the Paxos
    /// log's truncation floor — it only ever advances over *executed*
    /// instances, never past a committed-but-unexecuted or undecided
    /// one.
    executed_floor: HashMap<NodeId, u64>,
    /// Instances executed since the last compaction sweep (the
    /// `interval_ops` trigger input).
    executed_since_sweep: u64,
}

impl EpaxosReplica {
    /// Create the replica for `me`.
    pub fn new(me: NodeId, cluster: ClusterConfig, cfg: EpaxosConfig) -> Self {
        EpaxosReplica {
            me,
            cluster,
            cfg,
            instances: HashMap::new(),
            next_slot: 0,
            interference: InterferenceIndex::new(),
            kv: KvStore::new(),
            unexecuted: BTreeSet::new(),
            sessions: SessionTable::new(),
            in_flight: HashMap::new(),
            executed_floor: HashMap::new(),
            executed_since_sweep: 0,
        }
    }

    /// True when `inst` lies below its origin's compaction floor — it
    /// executed here long ago and was swept; any message about it is
    /// stale.
    fn below_floor(&self, inst: InstanceId) -> bool {
        inst.slot < self.executed_floor.get(&inst.replica).copied().unwrap_or(0)
    }

    /// Compaction sweep: advance each origin's contiguous executed
    /// frontier and drop every instance below it. The EPaxos
    /// counterpart of log truncation — state below the floor is fully
    /// captured by the kv store (and the planner reports swept ids as
    /// executed), so the table stays bounded by the sweep interval plus
    /// the in-flight window.
    fn maybe_sweep(&mut self) {
        let Some(interval) = self.cfg.snapshot.interval_ops else {
            return;
        };
        if self.executed_since_sweep < interval {
            return;
        }
        self.executed_since_sweep = 0;
        for &r in &self.cluster.replicas {
            let f = self.executed_floor.entry(r).or_insert(0);
            while self
                .instances
                .get(&InstanceId {
                    replica: r,
                    slot: *f,
                })
                .is_some_and(|i| i.phase == Phase::Executed)
            {
                *f += 1;
            }
        }
        let before = self.instances.len();
        let floors = &self.executed_floor;
        self.instances
            .retain(|id, _| id.slot >= floors.get(&id.replica).copied().unwrap_or(0));
        // Count only sweeps that actually freed memory: a wave where
        // every origin's floor is pinned by a committed-but-unexecuted
        // instance drops nothing, and reporting it as a snapshot would
        // inflate the gated `snapshots_taken` metric.
        if self.instances.len() < before {
            self.cluster.stats.note_snapshot();
        }
    }

    /// The local state machine (tests/diagnostics).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// A copy of the state machine restricted to keys in `[start, end)`
    /// (`end = None` unbounded). EPaxos has no slot-log snapshot value;
    /// this is its range-filtered capture for shard moves — the
    /// departing slice without cloning the keys that stay.
    pub fn kv_range(&self, start: paxi::Key, end: Option<paxi::Key>) -> KvStore {
        self.kv.filtered(start, end)
    }

    /// Number of committed-but-unexecuted instances (the window whose
    /// growth degrades EPaxos under load).
    pub fn unexecuted_len(&self) -> usize {
        self.unexecuted.len()
    }

    fn broadcast(&self, msg: EpaxosMsg, ctx: &mut Ctx<EpaxosMsg>) {
        for peer in self.cluster.peers(self.me) {
            ctx.send_proto(peer, msg.clone());
        }
    }

    fn commit_instance(&mut self, inst: InstanceId, ctx: &mut Ctx<EpaxosMsg>) {
        let i = self
            .instances
            .get_mut(&inst)
            .expect("committing unknown instance");
        debug_assert!(i.phase != Phase::Executed);
        if i.phase == Phase::Committed {
            return;
        }
        i.phase = Phase::Committed;
        self.cluster
            .safety
            .record(inst.replica.0, inst.slot, i.command.id);
        self.unexecuted.insert(inst);
        let msg = EpaxosMsg::Commit {
            inst,
            command: i.command.clone(),
            attrs: i.attrs.clone(),
        };
        self.broadcast(msg, ctx);
        self.try_execute(ctx);
    }

    /// Learn a commit decided elsewhere.
    fn learn_commit(
        &mut self,
        inst: InstanceId,
        command: Command,
        attrs: Attrs,
        ctx: &mut Ctx<EpaxosMsg>,
    ) {
        if self.below_floor(inst) {
            // Executed and swept here already; a late (duplicate)
            // commit must not resurrect the instance and re-apply it.
            return;
        }
        let entry = self.instances.entry(inst).or_insert_with(|| Instance {
            command: command.clone(),
            attrs: attrs.clone(),
            phase: Phase::PreAccepted,
            preaccept_oks: 0,
            any_changed: false,
            accept_oks: 0,
            client: None,
        });
        if entry.phase == Phase::Committed || entry.phase == Phase::Executed {
            return;
        }
        entry.command = command;
        entry.attrs = attrs;
        entry.phase = Phase::Committed;
        let (seq, op) = (entry.attrs.seq, entry.command.op.clone());
        self.interference.record(inst, seq, &op);
        self.cluster
            .safety
            .record(inst.replica.0, inst.slot, entry.command.id);
        self.unexecuted.insert(inst);
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut Ctx<EpaxosMsg>) {
        if self.unexecuted.is_empty() {
            return;
        }
        let roots: Vec<InstanceId> = self.unexecuted.iter().copied().collect();
        let plan = plan_execution(&roots, &TableView(&self.instances, &self.executed_floor));
        if plan.visited > 0 {
            ctx.charge(self.cfg.graph_visit_cost * plan.visited as u64);
        }
        let executed_now = plan.order.len() as u64;
        for inst in plan.order {
            let i = self
                .instances
                .get_mut(&inst)
                .expect("planned unknown instance");
            debug_assert_eq!(i.phase, Phase::Committed);
            // Exactly-once at the state machine: a command that slipped
            // past proposal-time dedup (e.g. a retry re-proposed by a
            // different replica) is committed as an instance but must
            // not mutate state twice. The cached reply answers instead.
            let already = self.sessions.replay(i.command.id).cloned();
            let reply = match already {
                Some(cached) => {
                    let mut r = cached;
                    r.id = i.command.id;
                    r
                }
                None => {
                    let value = self.kv.apply(&i.command.op);
                    ctx.charge(self.cfg.exec_cost);
                    let r = ClientReply::ok(i.command.id, value);
                    self.sessions.record(&r);
                    r
                }
            };
            i.phase = Phase::Executed;
            self.unexecuted.remove(&inst);
            if inst.replica == self.me {
                self.in_flight.remove(&i.command.id);
                if let Some(client) = i.client.take() {
                    ctx.reply(client, reply);
                }
            }
        }
        if executed_now > 0 {
            self.executed_since_sweep += executed_now;
            // Sample the peak *before* sweeping — the pre-compaction
            // table size is what the memory-boundedness gate must see.
            self.cluster
                .stats
                .observe_log_len(self.instances.len() as u64);
            self.maybe_sweep();
        }
    }
}

impl Replica<EpaxosMsg> for EpaxosReplica {
    fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<EpaxosMsg>) {
        let command = req.command;
        // Exactly-once replay (ROADMAP item): a retry of an executed
        // command gets the cached reply; a retry of one still in flight
        // attaches to the existing instance instead of opening a new
        // one; anything older than the session window is dropped.
        if let Some(reply) = self.sessions.replay(command.id) {
            ctx.reply(client, reply.clone());
            return;
        }
        // In-flight before staleness: a retry of a pending instance must
        // attach to it even if the session window has moved past its seq
        // (dependency-ordered execution can finish successors first).
        if let Some(inst) = self.in_flight.get(&command.id) {
            if let Some(i) = self.instances.get_mut(inst) {
                if i.phase != Phase::Executed {
                    i.client = Some(client); // reply comes at execution
                    return;
                }
            }
        }
        if self.sessions.is_stale(command.id) {
            return;
        }
        let inst = InstanceId {
            replica: self.me,
            slot: self.next_slot,
        };
        self.next_slot += 1;
        self.in_flight.insert(command.id, inst);
        ctx.charge(self.cfg.attr_cost);
        let attrs = self.interference.attrs_for(&command.op);
        self.interference.record(inst, attrs.seq, &command.op);
        self.instances.insert(
            inst,
            Instance {
                command: command.clone(),
                attrs: attrs.clone(),
                phase: Phase::PreAccepted,
                preaccept_oks: 1, // self
                any_changed: false,
                accept_oks: 0,
                client: Some(client),
            },
        );
        if self.cluster.n() == 1 {
            self.commit_instance(inst, ctx);
            return;
        }
        self.broadcast(
            EpaxosMsg::PreAccept {
                inst,
                ballot: Ballot::ZERO,
                command,
                attrs,
            },
            ctx,
        );
    }

    fn on_proto(&mut self, _from: NodeId, msg: EpaxosMsg, ctx: &mut Ctx<EpaxosMsg>) {
        match msg {
            EpaxosMsg::PreAccept {
                inst,
                ballot: _,
                command,
                attrs,
            } => {
                if self.below_floor(inst) {
                    return; // stale duplicate of a swept instance
                }
                ctx.charge(self.cfg.attr_cost);
                let mut merged = attrs;
                let local = self.interference.attrs_for(&command.op);
                let changed = merged.merge(&local);
                self.interference.record(inst, merged.seq, &command.op);
                self.instances.insert(
                    inst,
                    Instance {
                        command,
                        attrs: merged.clone(),
                        phase: Phase::PreAccepted,
                        preaccept_oks: 0,
                        any_changed: false,
                        accept_oks: 0,
                        client: None,
                    },
                );
                ctx.send_proto(
                    inst.replica,
                    EpaxosMsg::PreAcceptOk {
                        inst,
                        node: self.me,
                        attrs: merged,
                        changed,
                    },
                );
            }
            EpaxosMsg::PreAcceptOk {
                inst,
                node: _,
                attrs,
                changed,
            } => {
                let n = self.cluster.n();
                let Some(i) = self.instances.get_mut(&inst) else {
                    return;
                };
                if i.phase != Phase::PreAccepted || inst.replica != self.me {
                    return; // stale (already moved on)
                }
                i.preaccept_oks += 1;
                if changed {
                    i.any_changed = true;
                    i.attrs.merge(&attrs);
                }
                if i.preaccept_oks >= fast_quorum(n) {
                    if i.any_changed {
                        // Slow path: fix attributes with a majority.
                        i.phase = Phase::Accepted;
                        i.accept_oks = 1; // self
                        let msg = EpaxosMsg::Accept {
                            inst,
                            ballot: Ballot::ZERO,
                            command: i.command.clone(),
                            attrs: i.attrs.clone(),
                        };
                        self.broadcast(msg, ctx);
                    } else {
                        // Fast path: commit in one round trip.
                        self.commit_instance(inst, ctx);
                    }
                }
            }
            EpaxosMsg::Accept {
                inst,
                ballot: _,
                command,
                attrs,
            } => {
                if self.below_floor(inst) {
                    return; // stale duplicate of a swept instance
                }
                ctx.charge(self.cfg.attr_cost);
                self.interference.record(inst, attrs.seq, &command.op);
                let entry = self.instances.entry(inst).or_insert_with(|| Instance {
                    command: command.clone(),
                    attrs: attrs.clone(),
                    phase: Phase::Accepted,
                    preaccept_oks: 0,
                    any_changed: false,
                    accept_oks: 0,
                    client: None,
                });
                if entry.phase != Phase::Committed && entry.phase != Phase::Executed {
                    entry.command = command;
                    entry.attrs = attrs;
                    entry.phase = Phase::Accepted;
                }
                ctx.send_proto(
                    inst.replica,
                    EpaxosMsg::AcceptOk {
                        inst,
                        node: self.me,
                    },
                );
            }
            EpaxosMsg::AcceptOk { inst, node: _ } => {
                let n = self.cluster.n();
                let Some(i) = self.instances.get_mut(&inst) else {
                    return;
                };
                if i.phase != Phase::Accepted || inst.replica != self.me {
                    return;
                }
                i.accept_oks += 1;
                if i.accept_oks >= majority(n) {
                    self.commit_instance(inst, ctx);
                }
            }
            EpaxosMsg::Commit {
                inst,
                command,
                attrs,
            } => {
                self.learn_commit(inst, command, attrs, ctx);
            }
        }
    }

    fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Ctx<EpaxosMsg>) {}

    fn state_digest(&self) -> Option<u64> {
        Some(self.kv.fingerprint())
    }
}

/// [`EpaxosConfig`] is the protocol's [`paxi::ProtocolSpec`]: hand it
/// to [`paxi::Experiment`] to run EPaxos on any topology and either
/// execution substrate. EPaxos is leaderless, so clients default to a
/// uniformly random replica per request, matching the paper's EPaxos
/// client setup.
impl paxi::ProtocolSpec for EpaxosConfig {
    type Msg = EpaxosMsg;

    fn protocol_name(&self) -> &'static str {
        "epaxos"
    }

    fn build_replica(
        &self,
        node: NodeId,
        cluster: &ClusterConfig,
    ) -> Box<dyn Actor<Envelope<EpaxosMsg>> + Send> {
        Box::new(ReplicaActor(EpaxosReplica::new(
            node,
            cluster.clone(),
            self.clone(),
        )))
    }

    fn default_target(&self, replicas: &[NodeId]) -> paxi::TargetPolicy {
        paxi::TargetPolicy::Random(replicas.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Experiment, Workload};
    use simnet::SimDuration;

    fn exp(n: usize, clients: usize) -> Experiment<EpaxosConfig> {
        // EPaxos's default target is already a random spread over all
        // replicas — no per-protocol client wiring needed.
        Experiment::lan(EpaxosConfig::default(), n)
            .clients(clients)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
    }

    #[test]
    fn five_node_cluster_commits() {
        let r = exp(5, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.decided > 50);
    }

    #[test]
    fn twentyfive_node_cluster_commits() {
        let r = exp(25, 8).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 50.0);
    }

    #[test]
    fn load_is_spread_across_replicas() {
        let r = exp(5, 8).run_sim(paxi::DEFAULT_SEED);
        // No dedicated leader: every replica should carry comparable
        // message load (unlike Paxos where the leader dominates).
        let max = r.node_msgs[..5].iter().max().copied().unwrap() as f64;
        let min = r.node_msgs[..5].iter().min().copied().unwrap() as f64;
        assert!(min > 0.0);
        assert!(
            max / min < 2.0,
            "balanced load expected, got {:?}",
            &r.node_msgs[..5]
        );
    }

    #[test]
    fn conflicting_workload_still_safe() {
        // Tiny key space: every command interferes, exercising the slow
        // path and SCC execution heavily.
        let r = exp(5, 8)
            .workload(Workload {
                num_keys: 2,
                ..Workload::paper_default()
            })
            .run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 10.0);
    }

    #[test]
    fn single_node_degenerate_cluster() {
        let r = exp(1, 2).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0);
    }

    #[test]
    fn retried_commands_do_not_become_new_instances() {
        use paxi::{ClusterConfig, Envelope, Operation, Value};
        use simnet::{Actor, Context, CpuCostModel, SimTime, Simulation, TimerId, Topology};

        /// Sends the same Put three times (original + two retries),
        /// then a Get on the same key; counts ok replies.
        struct RetryingClient {
            target: NodeId,
            sent: u32,
            oks: std::rc::Rc<std::cell::RefCell<u32>>,
        }
        impl RetryingClient {
            fn put(&self, ctx: &mut Context<Envelope<EpaxosMsg>>) {
                let id = paxi::RequestId {
                    client: ctx.node(),
                    seq: 1,
                };
                ctx.send(
                    self.target,
                    Envelope::Request(ClientRequest {
                        command: Command {
                            id,
                            op: Operation::Put(7, Value::zeros(4)),
                        },
                    }),
                );
            }
        }
        impl Actor<Envelope<EpaxosMsg>> for RetryingClient {
            fn on_start(&mut self, ctx: &mut Context<Envelope<EpaxosMsg>>) {
                self.put(ctx);
                self.sent = 1;
                ctx.set_timer(simnet::SimDuration::from_millis(5), 0);
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                msg: Envelope<EpaxosMsg>,
                _ctx: &mut Context<Envelope<EpaxosMsg>>,
            ) {
                if matches!(msg, Envelope::Reply(r) if r.ok) {
                    *self.oks.borrow_mut() += 1;
                }
            }
            fn on_timer(&mut self, _i: TimerId, _k: u64, ctx: &mut Context<Envelope<EpaxosMsg>>) {
                if self.sent < 3 {
                    self.put(ctx); // retry: reply lost or slow
                    self.sent += 1;
                    ctx.set_timer(simnet::SimDuration::from_millis(5), 0);
                }
            }
        }

        let mut topo = Topology::lan(3);
        topo.add_nodes(1, 0);
        let mut sim: Simulation<Envelope<EpaxosMsg>> =
            Simulation::new(topo, CpuCostModel::calibrated(), 5);
        let cluster = ClusterConfig::new(3);
        for i in 0..3usize {
            sim.add_actor(Box::new(ReplicaActor(EpaxosReplica::new(
                NodeId::from(i),
                cluster.clone(),
                EpaxosConfig::default(),
            ))));
        }
        let oks = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        sim.add_actor(Box::new(RetryingClient {
            target: NodeId(0),
            sent: 0,
            oks: oks.clone(),
        }));
        sim.run_until(SimTime::from_millis(100));
        cluster.safety.assert_safe();
        let decided_copies = cluster
            .safety
            .decisions()
            .iter()
            .filter(|((_, _), id)| id.seq == 1 && id.client == NodeId(3))
            .count();
        assert_eq!(
            decided_copies, 1,
            "retries must attach to or replay the existing instance, \
             not open new ones"
        );
        assert!(
            *oks.borrow() >= 2,
            "retries are answered from the session cache, got {}",
            oks.borrow()
        );
    }

    #[test]
    fn compaction_bounds_the_instance_table() {
        let interval = 100;
        let cfg = EpaxosConfig::default().with_snapshots(paxi::SnapshotConfig::every_ops(interval));
        let r = Experiment::lan(cfg, 5)
            .clients(8)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_secs(2))
            .run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(
            r.decided > 3 * interval,
            "enough ops to sweep: {}",
            r.decided
        );
        assert!(r.snapshots_taken > 0, "sweeps must have run");
        assert!(
            r.max_log_len <= 2 * interval,
            "instance table must stay bounded by the sweep interval: \
             {} instances > 2x{interval}",
            r.max_log_len
        );
        // Same run without compaction grows past the bound.
        let unbounded = Experiment::lan(EpaxosConfig::default(), 5)
            .clients(8)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_secs(2))
            .run_sim(paxi::DEFAULT_SEED);
        assert_eq!(unbounded.snapshots_taken, 0);
        assert!(
            unbounded.max_log_len > r.max_log_len * 2,
            "without sweeps the table grows without bound: {} vs {}",
            unbounded.max_log_len,
            r.max_log_len
        );
    }

    #[test]
    fn reads_see_prior_writes() {
        // Direct unit-style check of execution semantics through the
        // public replica API is covered by graph tests; here we assert
        // end-to-end sanity: plenty of reads completed and nothing
        // violated agreement.
        let r = exp(3, 4)
            .workload(Workload {
                read_ratio: 0.9,
                ..Workload::paper_default()
            })
            .run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty());
        assert!(r.samples > 100);
    }
}
