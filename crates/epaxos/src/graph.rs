//! EPaxos execution: dependency-graph linearization.
//!
//! Committed instances form a directed graph (edges point at
//! dependencies). Execution must respect the graph: strongly connected
//! components (concurrent interfering commands that ended up depending
//! on each other) execute together, ordered by sequence number; across
//! SCCs, dependencies execute first. An instance whose (transitive)
//! dependencies include a not-yet-committed instance must wait.
//!
//! This is the CPU-hungry part of EPaxos the paper blames for its
//! throughput collapse under conflicts: every commit triggers graph
//! analysis over the committed-but-unexecuted window. The planner
//! reports how many nodes it visited so the replica can charge
//! simulated CPU accordingly.

use crate::messages::InstanceId;
use std::collections::HashMap;

/// Commit status of an instance as seen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstStatus {
    /// Not known at this replica (e.g. a dep we have not heard of).
    Unknown,
    /// Known but not committed yet (pre-accepted / accepted).
    Tentative,
    /// Committed, ready to order.
    Committed,
    /// Already applied to the state machine.
    Executed,
}

/// Read-only view of the instance table the planner traverses.
pub trait InstanceView {
    /// Status of `id`.
    fn status(&self, id: InstanceId) -> InstStatus;
    /// Dependencies of `id` (only meaningful when known).
    fn deps(&self, id: InstanceId) -> &[InstanceId];
    /// Sequence number of `id`.
    fn seq(&self, id: InstanceId) -> u64;
}

/// The planner's result.
#[derive(Debug, Default)]
pub struct ExecutionPlan {
    /// Instances to execute now, in order.
    pub order: Vec<InstanceId>,
    /// Graph nodes visited while planning (for CPU accounting).
    pub visited: usize,
}

#[derive(Default)]
struct Tarjan {
    index: HashMap<InstanceId, usize>,
    lowlink: HashMap<InstanceId, usize>,
    on_stack: HashMap<InstanceId, bool>,
    stack: Vec<InstanceId>,
    next_index: usize,
    /// SCCs in completion order (dependencies before dependents).
    sccs: Vec<Vec<InstanceId>>,
    /// Nodes that touched a non-committed dependency.
    visited: usize,
}

impl Tarjan {
    /// Iterative Tarjan rooted at `root`, restricted to committed nodes.
    fn run(&mut self, root: InstanceId, view: &impl InstanceView) {
        if self.index.contains_key(&root) || view.status(root) != InstStatus::Committed {
            return;
        }
        // Frame: (node, next dep index to examine).
        let mut frames: Vec<(InstanceId, usize)> = vec![(root, 0)];
        self.enter(root);
        while let Some(&mut (v, ref mut di)) = frames.last_mut() {
            let deps = view.deps(v);
            if *di < deps.len() {
                let w = deps[*di];
                *di += 1;
                match view.status(w) {
                    InstStatus::Executed => {} // satisfied
                    InstStatus::Committed => {
                        if !self.index.contains_key(&w) {
                            self.enter(w);
                            frames.push((w, 0));
                        } else if self.on_stack.get(&w).copied().unwrap_or(false) {
                            let wl = self.index[&w];
                            let vl = self.lowlink.get_mut(&v).expect("entered");
                            if wl < *vl {
                                *vl = wl;
                            }
                        }
                    }
                    // Tentative/unknown deps don't stop the traversal —
                    // blocking is resolved per-SCC afterwards.
                    _ => {}
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let vl = self.lowlink[&v];
                    let pl = self.lowlink.get_mut(&p).expect("entered");
                    if vl < *pl {
                        *pl = vl;
                    }
                }
                if self.lowlink[&v] == self.index[&v] {
                    let mut scc = Vec::new();
                    while let Some(w) = self.stack.pop() {
                        self.on_stack.insert(w, false);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    self.sccs.push(scc);
                }
            }
        }
    }

    fn enter(&mut self, v: InstanceId) {
        self.index.insert(v, self.next_index);
        self.lowlink.insert(v, self.next_index);
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack.insert(v, true);
        self.visited += 1;
    }
}

/// Compute the executable order starting from `roots` (typically every
/// committed-but-unexecuted instance).
pub fn plan_execution(roots: &[InstanceId], view: &impl InstanceView) -> ExecutionPlan {
    let mut t = Tarjan::default();
    for &r in roots {
        t.run(r, view);
    }

    // Map node -> SCC id, then decide executability per SCC in emission
    // order (dependencies come first, so a blocked SCC poisons its
    // dependents automatically).
    let mut scc_of: HashMap<InstanceId, usize> = HashMap::new();
    for (i, scc) in t.sccs.iter().enumerate() {
        for &n in scc {
            scc_of.insert(n, i);
        }
    }
    let mut blocked = vec![false; t.sccs.len()];
    let mut order = Vec::new();
    for (i, scc) in t.sccs.iter().enumerate() {
        let mut ok = true;
        'members: for &n in scc {
            for &d in view.deps(n) {
                match view.status(d) {
                    InstStatus::Executed => {}
                    InstStatus::Committed => {
                        if let Some(&ds) = scc_of.get(&d) {
                            if ds != i && blocked[ds] {
                                ok = false;
                                break 'members;
                            }
                        } else {
                            // Committed but unreached: not among roots'
                            // closure — treat as blocking to stay safe.
                            ok = false;
                            break 'members;
                        }
                    }
                    _ => {
                        ok = false;
                        break 'members;
                    }
                }
            }
        }
        blocked[i] = !ok;
        if ok {
            let mut members = scc.clone();
            members.sort_by_key(|&n| (view.seq(n), n));
            order.extend(members);
        }
    }
    ExecutionPlan {
        order,
        visited: t.visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    struct MockView {
        nodes: HashMap<InstanceId, (InstStatus, u64, Vec<InstanceId>)>,
    }

    impl InstanceView for MockView {
        fn status(&self, id: InstanceId) -> InstStatus {
            self.nodes
                .get(&id)
                .map(|n| n.0)
                .unwrap_or(InstStatus::Unknown)
        }
        fn deps(&self, id: InstanceId) -> &[InstanceId] {
            self.nodes.get(&id).map(|n| n.2.as_slice()).unwrap_or(&[])
        }
        fn seq(&self, id: InstanceId) -> u64 {
            self.nodes.get(&id).map(|n| n.1).unwrap_or(0)
        }
    }

    fn inst(r: u32, s: u64) -> InstanceId {
        InstanceId {
            replica: NodeId(r),
            slot: s,
        }
    }

    fn view(entries: &[(InstanceId, InstStatus, u64, &[InstanceId])]) -> MockView {
        MockView {
            nodes: entries
                .iter()
                .map(|&(id, st, seq, deps)| (id, (st, seq, deps.to_vec())))
                .collect(),
        }
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        // c -> b -> a (deps point left)
        let a = inst(0, 0);
        let b = inst(0, 1);
        let c = inst(0, 2);
        let v = view(&[
            (a, InstStatus::Committed, 1, &[]),
            (b, InstStatus::Committed, 2, &[a]),
            (c, InstStatus::Committed, 3, &[b]),
        ]);
        let plan = plan_execution(&[c], &v);
        assert_eq!(plan.order, vec![a, b, c]);
        assert_eq!(plan.visited, 3);
    }

    #[test]
    fn executed_deps_are_satisfied() {
        let a = inst(0, 0);
        let b = inst(0, 1);
        let v = view(&[
            (a, InstStatus::Executed, 1, &[]),
            (b, InstStatus::Committed, 2, &[a]),
        ]);
        let plan = plan_execution(&[b], &v);
        assert_eq!(plan.order, vec![b]);
    }

    #[test]
    fn tentative_dep_blocks_execution() {
        let a = inst(0, 0);
        let b = inst(0, 1);
        let c = inst(0, 2);
        let v = view(&[
            (a, InstStatus::Tentative, 1, &[]),
            (b, InstStatus::Committed, 2, &[a]),
            (c, InstStatus::Committed, 3, &[b]),
        ]);
        let plan = plan_execution(&[c], &v);
        assert!(
            plan.order.is_empty(),
            "b blocked by a, c blocked by b: {:?}",
            plan.order
        );
    }

    #[test]
    fn unknown_dep_blocks_execution() {
        let b = inst(0, 1);
        let v = view(&[(b, InstStatus::Committed, 2, &[inst(9, 9)])]);
        let plan = plan_execution(&[b], &v);
        assert!(plan.order.is_empty());
    }

    #[test]
    fn cycle_executes_together_ordered_by_seq() {
        // a <-> b (mutual deps from concurrent conflicting proposals).
        let a = inst(0, 0);
        let b = inst(1, 0);
        let v = view(&[
            (a, InstStatus::Committed, 5, &[b]),
            (b, InstStatus::Committed, 3, &[a]),
        ]);
        let plan = plan_execution(&[a], &v);
        assert_eq!(plan.order, vec![b, a], "within SCC: ascending seq");
    }

    #[test]
    fn cycle_with_blocked_external_dep_waits() {
        let a = inst(0, 0);
        let b = inst(1, 0);
        let x = inst(2, 0);
        let v = view(&[
            (a, InstStatus::Committed, 5, &[b]),
            (b, InstStatus::Committed, 3, &[a, x]),
            (x, InstStatus::Tentative, 1, &[]),
        ]);
        let plan = plan_execution(&[a], &v);
        assert!(plan.order.is_empty());
    }

    #[test]
    fn independent_components_both_execute() {
        let a = inst(0, 0);
        let b = inst(1, 0);
        let v = view(&[
            (a, InstStatus::Committed, 1, &[]),
            (b, InstStatus::Committed, 2, &[]),
        ]);
        let plan = plan_execution(&[a, b], &v);
        assert_eq!(plan.order.len(), 2);
    }

    #[test]
    fn blocked_scc_poisons_dependents() {
        // d -> c -> {a,b cycle}, cycle blocked by tentative t.
        let a = inst(0, 0);
        let b = inst(1, 0);
        let c = inst(2, 0);
        let d = inst(3, 0);
        let t = inst(4, 0);
        let v = view(&[
            (a, InstStatus::Committed, 1, &[b, t]),
            (b, InstStatus::Committed, 2, &[a]),
            (c, InstStatus::Committed, 3, &[a]),
            (d, InstStatus::Committed, 4, &[c]),
            (t, InstStatus::Tentative, 0, &[]),
        ]);
        let plan = plan_execution(&[d], &v);
        assert!(
            plan.order.is_empty(),
            "everything transitively blocked: {:?}",
            plan.order
        );
    }

    #[test]
    fn seq_ties_break_by_instance_id() {
        let a = inst(0, 0);
        let b = inst(1, 0);
        let v = view(&[
            (a, InstStatus::Committed, 5, &[b]),
            (b, InstStatus::Committed, 5, &[a]),
        ]);
        let plan = plan_execution(&[a], &v);
        assert_eq!(plan.order, vec![a, b], "same seq: lower instance id first");
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // 10_000-deep dependency chain exercises the iterative DFS.
        let mut entries = Vec::new();
        for i in 0..10_000u64 {
            let deps: Vec<InstanceId> = if i == 0 { vec![] } else { vec![inst(0, i - 1)] };
            entries.push((inst(0, i), (InstStatus::Committed, i, deps)));
        }
        let v = MockView {
            nodes: entries.into_iter().collect(),
        };
        let plan = plan_execution(&[inst(0, 9_999)], &v);
        assert_eq!(plan.order.len(), 10_000);
        assert_eq!(plan.order[0], inst(0, 0));
    }
}
