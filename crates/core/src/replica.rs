//! The PigPaxos replica.
//!
//! Decision logic (ballots, quorums, commits) is byte-for-byte the
//! Multi-Paxos [`Leader`]/[`Acceptor`] pair from the `paxos` crate; this
//! module replaces only the *communication flow* (paper §3.2):
//!
//! - The leader fans each phase message out to one random relay per
//!   group instead of to all `N−1` followers.
//! - Relays forward to their group, aggregate the group's votes, and
//!   send one combined response to the leader.
//! - Relays time out on unresponsive peers (§3.4); the leader's normal
//!   retry re-disseminates through a *fresh* random relay set, which is
//!   how PigPaxos survives relay crashes (§3.4, Fig. 5b).

use crate::config::PigConfig;
use crate::groups::RelayGroups;
use crate::messages::{PigMsg, RelayPlan};
use crate::pqr::{PendingReads, ReadOutcome};
use crate::probe_batch::{ProbeBatcher, ProbePush, ProbeRelease};
use crate::relay::{AggKey, Flush, RelayTable, UplinkCoalescer, VoteSet};
use paxi::{
    ClientReply, ClientRequest, ClusterConfig, Command, Ctx, Envelope, Replica, ReplicaActor,
    ReplicaCtx, ReplyBatcher, SessionTable,
};
use paxos::{Acceptor, BatchLane, CommitAdvance, Leader, P2bVote, PaxosMsg, Phase1Outcome};
use rand::rngs::StdRng;
use rand::Rng;
use simnet::{Actor, NodeId, SimDuration, SimTime, TimerId};
use std::collections::{HashMap, HashSet};

const T_ELECTION: u64 = 1;
const T_HEARTBEAT: u64 = 2;
const T_RETRY_SCAN: u64 = 3;
const T_RELAY_SCAN: u64 = 4;
const T_RESHUFFLE: u64 = 5;
const T_LEARN: u64 = 6;
const T_PQR_RINSE: u64 = 7;
const T_BATCH: u64 = 8;
const T_REPLY: u64 = 9;
const T_AGG_FLUSH: u64 = 10;
const T_PROBE_FLUSH: u64 = 11;
const T_PROBE_WAVE: u64 = 12;

/// Timer kinds live in the low byte; the payload (e.g. a read id) in
/// the rest.
const TIMER_TAG_MASK: u64 = 0xff;

/// Largest number of slots requested in one batched `LearnReq`.
const LEARN_BATCH_MAX: usize = 4096;

/// A PigPaxos replica (leader-capable, relay-capable).
pub struct PigReplica {
    me: NodeId,
    cluster: ClusterConfig,
    cfg: PigConfig,
    acceptor: Acceptor,
    leader: Leader,
    groups: RelayGroups,
    relays: RelayTable,
    known_leader: Option<NodeId>,
    last_leader_contact: SimTime,
    waiting: HashMap<u64, NodeId>,
    /// Recently executed replies per client, for exactly-once retries.
    sessions: SessionTable,
    /// Client-command admission: duplicate suppression, per-client
    /// sequencing, and the batch buffer (active leader only; shared
    /// with the direct Multi-Paxos replica via `paxos::batching`).
    lane: BatchLane,
    /// Executed-command replies buffered per destination client.
    replies: ReplyBatcher,
    /// True while a reply flush timer is in flight.
    reply_timer_armed: bool,
    /// Multi-round uplink coalescing (relay role).
    coalescer: UplinkCoalescer,
    /// True while an uplink coalesce-window timer is in flight.
    agg_timer_armed: bool,
    election_timeout: SimDuration,
    repair_up_to: u64,
    repair_armed: bool,
    reads: PendingReads,
    /// Proxy-side coalescing of quorum-read probes into relay waves
    /// (inert unless [`PigConfig::probe_batch`] enables it).
    probes: ProbeBatcher,
}

impl PigReplica {
    /// Create the replica for `me`.
    pub fn new(me: NodeId, cluster: ClusterConfig, cfg: PigConfig) -> Self {
        let n = cluster.n();
        let followers = cluster.peers(me);
        // Explicit group specs describe the *configured leader's* view of
        // the followers. Every other node adapts the spec by taking the
        // leader's place in its own group — so if this node ever campaigns,
        // its groups keep the intended (e.g. per-region) structure.
        let spec = match &cfg.groups {
            crate::groups::GroupSpec::Explicit(gs) if me != cluster.leader => {
                crate::groups::GroupSpec::Explicit(
                    gs.iter()
                        .map(|g| {
                            g.iter()
                                .map(|&node| if node == me { cluster.leader } else { node })
                                .collect()
                        })
                        .collect(),
                )
            }
            other => other.clone(),
        };
        let groups = RelayGroups::build(&followers, &spec);
        // Sub-relays must answer their parent per round (the parent's
        // aggregation is keyed by the round's exact span), so multi-
        // round coalescing is only safe on single-level trees.
        let coalescer = if cfg.levels == 1 {
            UplinkCoalescer::new(cfg.relay_coalesce_window, cfg.relay_coalesce_rounds)
        } else {
            UplinkCoalescer::disabled()
        };
        let mut acceptor = Acceptor::new(me, cluster.safety.clone());
        acceptor.set_snapshot_config(cfg.paxos.snapshot.clone());
        PigReplica {
            me,
            acceptor,
            leader: Leader::new(me, n),
            groups,
            relays: RelayTable::new(),
            known_leader: Some(cluster.leader),
            last_leader_contact: SimTime::ZERO,
            waiting: HashMap::new(),
            sessions: SessionTable::new(),
            // PQR reads are served at follower proxies and never reach
            // the leader's log, so a client's sequence numbers have
            // legitimate gaps there — per-client sequencing would hold
            // its writes forever. Sharded groups see gaps for the same
            // reason: the rest of the sequence routed elsewhere.
            lane: BatchLane::new(
                cfg.paxos.batch.clone(),
                !cfg.pqr_reads && !cluster.client_gaps,
            ),
            replies: ReplyBatcher::new(cfg.paxos.batch.replies),
            reply_timer_armed: false,
            coalescer,
            agg_timer_armed: false,
            election_timeout: SimDuration::ZERO,
            repair_up_to: 0,
            repair_armed: false,
            reads: PendingReads::new(),
            probes: ProbeBatcher::new(cfg.probe_batch.clone()),
            cluster,
            cfg,
        }
    }

    /// The relay groups this node would use as leader.
    pub fn groups(&self) -> &RelayGroups {
        &self.groups
    }

    /// True if this replica currently acts as the active leader.
    pub fn is_leader(&self) -> bool {
        self.leader.is_active()
    }

    /// Number of aggregations currently pending at this node's relay
    /// table (diagnostics).
    pub fn pending_aggregations(&self) -> usize {
        self.relays.len()
    }

    /// Range-filtered snapshot of this replica's executed state at the
    /// current frontier, without truncating (see
    /// [`paxos::Acceptor::snapshot_range`]). The shard-move drain uses
    /// this to package a departing key range.
    pub fn snapshot_range(&self, start: paxi::Key, end: Option<paxi::Key>) -> paxi::Snapshot {
        self.acceptor.snapshot_range(&self.sessions, start, end)
    }

    // ---- dissemination (leader side) ------------------------------------

    /// Fan `inner` out through one random relay per group.
    fn disseminate(&mut self, inner: PaxosMsg, ctx: &mut Ctx<PigMsg>) {
        self.disseminate_with(inner, ctx, |_| {});
    }

    /// Fan `inner` out through one random relay per group, reporting
    /// each chosen relay to `on_relay` (probe waves track the exact
    /// relay set so each uplink can be matched back to its sender).
    fn disseminate_with(
        &mut self,
        inner: PaxosMsg,
        ctx: &mut Ctx<PigMsg>,
        mut on_relay: impl FnMut(NodeId),
    ) {
        let threshold = self.cfg.partial_threshold.unwrap_or(0);
        let levels = self.cfg.levels;
        let picks = if self.cfg.rotate_relays {
            self.groups.pick_relays(ctx.rng())
        } else {
            self.groups.pick_fixed_relays()
        };
        for (relay, peers) in picks {
            let plan = build_plan(peers, levels, ctx.rng());
            ctx.send_proto(
                relay,
                PigMsg::ToRelay {
                    reply_to: self.me,
                    plan,
                    inner: inner.clone(),
                    threshold,
                },
            );
            on_relay(relay);
        }
    }

    fn begin_campaign(&mut self, ctx: &mut Ctx<PigMsg>) {
        let ballot = self.leader.start_campaign(self.acceptor.promised());
        let watermark = self.acceptor.commit_watermark();
        let own = self.acceptor.on_p1a(ballot, watermark);
        let outcome = self.leader.on_p1b_votes(vec![own], watermark);
        self.handle_phase1_outcome(outcome, ctx);
        self.disseminate(
            PaxosMsg::P1a {
                ballot,
                from: watermark,
            },
            ctx,
        );
    }

    fn handle_phase1_outcome(&mut self, outcome: Phase1Outcome, ctx: &mut Ctx<PigMsg>) {
        match outcome {
            Phase1Outcome::Pending => {}
            Phase1Outcome::Won { reproposals } => {
                self.known_leader = Some(self.me);
                for (slot, cmd) in reproposals {
                    self.leader.register(slot, cmd.clone(), None, ctx.now());
                    self.send_accepts(slot, cmd, ctx);
                }
                // Serve commands that queued up during the campaign,
                // through the same admission path as live requests.
                while let Some((client, cmd)) = self.leader.pending.pop_front() {
                    self.admit_and_propose(client, cmd, ctx);
                }
            }
            Phase1Outcome::Preempted { higher } => {
                self.abdicate(higher.node(), ctx);
            }
        }
    }

    fn abdicate(&mut self, to: NodeId, ctx: &mut Ctx<PigMsg>) {
        self.leader.demote();
        self.known_leader = Some(to);
        paxos::abandon_leadership(
            &mut self.lane,
            &mut self.replies,
            &mut self.leader,
            self.known_leader,
            ctx,
        );
    }

    /// Run a client command through the shared admission lane and
    /// propose whatever it flushes.
    fn admit_and_propose(&mut self, client: NodeId, cmd: Command, ctx: &mut Ctx<PigMsg>) {
        let batches = self.lane.admit(
            &self.leader,
            &self.acceptor,
            &self.sessions,
            client,
            cmd,
            ctx,
            T_BATCH,
        );
        for batch in batches {
            self.propose_batch(batch, ctx);
        }
    }

    fn propose_command(&mut self, client: NodeId, cmd: Command, ctx: &mut Ctx<PigMsg>) {
        let slot = self.leader.propose(Some(client), cmd.clone(), ctx.now());
        self.waiting.insert(slot, client);
        self.send_accepts(slot, cmd, ctx);
    }

    /// Propose a full batch: allocate consecutive slots, self-vote each,
    /// and send a single `P2aBatch` down the relay tree — one message
    /// per *relay group* now amortizes the whole batch (relay fan-in ×
    /// batch amortization).
    fn propose_batch(&mut self, batch: Vec<(NodeId, Command)>, ctx: &mut Ctx<PigMsg>) {
        if batch.is_empty() {
            return;
        }
        if batch.len() == 1 {
            let (client, cmd) = batch.into_iter().next().expect("len checked");
            self.propose_command(client, cmd, ctx);
            return;
        }
        let paxos::BatchProposal {
            ballot,
            first_slot,
            commit_up_to,
            commands,
            waiting,
            self_commits,
            advances,
        } = paxos::propose_batch(&mut self.leader, &mut self.acceptor, batch, ctx.now());
        for (slot, client) in waiting {
            self.waiting.insert(slot, client);
        }
        for adv in advances {
            self.finish_advance(adv, ctx);
        }
        for (slot, cmd) in self_commits {
            self.commit_and_execute(slot, cmd, ctx);
        }
        self.disseminate(
            PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            },
            ctx,
        );
    }

    /// Accept every slot of a batched phase-2a locally (via the shared
    /// [`paxos::batching`] helper), returning the per-slot votes.
    fn accept_batch_local(
        &mut self,
        ballot: paxi::Ballot,
        first_slot: u64,
        commands: &[Command],
        commit_up_to: u64,
        ctx: &mut Ctx<PigMsg>,
    ) -> paxos::BatchAccept {
        let mut acc = paxos::accept_batch(
            &mut self.acceptor,
            ballot,
            first_slot,
            commands,
            commit_up_to,
        );
        for adv in std::mem::take(&mut acc.advances) {
            self.finish_advance(adv, ctx);
        }
        if acc.any_ok {
            self.note_leader_contact(ballot.node(), ctx.now());
            if self.leader.is_active() && ballot > self.leader.ballot() {
                self.abdicate(ballot.node(), ctx);
            }
        }
        acc
    }

    /// Feed a batched phase-2b aggregate at the leader through the
    /// shared guard + per-slot quorum counting. Commits are applied
    /// even when the same aggregate reports a preemption — a quorum of
    /// acks means *chosen*, and the slot is already out of
    /// `outstanding`.
    fn count_batch_votes(
        &mut self,
        ballot: paxi::Ballot,
        votes: Vec<P2bVote>,
        ctx: &mut Ctx<PigMsg>,
    ) {
        let Some(wave) =
            paxos::apply_batch_votes(&mut self.leader, &mut self.acceptor, ballot, votes)
        else {
            return;
        };
        self.reply_executed(wave.executed, ctx);
        if let Some(higher) = wave.preempted {
            self.abdicate(higher.node(), ctx);
        }
    }

    fn send_accepts(&mut self, slot: u64, cmd: Command, ctx: &mut Ctx<PigMsg>) {
        let ballot = self.leader.ballot();
        let commit_up_to = self.acceptor.commit_watermark();
        let (own, adv) = self
            .acceptor
            .on_p2a(ballot, slot, cmd.clone(), commit_up_to);
        self.finish_advance(adv, ctx);
        if let Ok(Some((slot, cmd, _))) = self.leader.on_p2b_vote(own) {
            self.commit_and_execute(slot, cmd, ctx);
        }
        self.disseminate(
            PaxosMsg::P2a {
                ballot,
                slot,
                command: cmd,
                commit_up_to,
            },
            ctx,
        );
    }

    fn commit_and_execute(&mut self, slot: u64, cmd: Command, ctx: &mut Ctx<PigMsg>) {
        self.acceptor.commit(slot, self.leader.ballot(), cmd);
        let executed = self.acceptor.execute_ready();
        self.reply_executed(executed, ctx);
    }

    fn reply_executed(
        &mut self,
        executed: Vec<(u64, paxi::RequestId, Option<paxi::Value>)>,
        ctx: &mut Ctx<PigMsg>,
    ) {
        let executed_any = !executed.is_empty();
        let batches = paxos::handle_executed(
            &mut self.lane,
            &mut self.replies,
            &mut self.reply_timer_armed,
            &mut self.sessions,
            &mut self.waiting,
            &self.leader,
            &self.acceptor,
            self.cfg.paxos.exec_cost,
            executed,
            T_BATCH,
            T_REPLY,
            ctx,
        );
        for batch in batches {
            self.propose_batch(batch, ctx);
        }
        if executed_any {
            // Compaction rides the execution wave: relays and leaders
            // alike sample the peak and truncate their executed prefix
            // (shared with the direct Multi-Paxos replica).
            paxos::compact_after_execution(&mut self.acceptor, &self.sessions, &self.cluster.stats);
        }
    }

    fn finish_advance(&mut self, adv: CommitAdvance, ctx: &mut Ctx<PigMsg>) {
        if let Some(up_to) = adv.learn_needed {
            self.repair_up_to = self.repair_up_to.max(up_to);
            if !self.repair_armed {
                self.repair_armed = true;
                ctx.set_timer(self.cfg.paxos.learn_delay, T_LEARN);
            }
        }
        self.reply_executed(adv.executed, ctx);
    }

    /// Fire the batched gap repair: ask the leader for exactly the slots
    /// still missing. Relay-based dissemination loses a slot for a whole
    /// group whenever the chosen relay is crashed, so unlike direct
    /// Paxos this path is exercised in every faulty run — batching keeps
    /// it off the leader's hot path (paper Fig. 13's ≈3% dip).
    fn send_learn_request(&mut self, ctx: &mut Ctx<PigMsg>) {
        self.repair_armed = false;
        let Some(leader) = self.known_leader else {
            return;
        };
        if leader == self.me {
            return;
        }
        let missing = self
            .acceptor
            .missing_slots(self.repair_up_to, LEARN_BATCH_MAX);
        if !missing.is_empty() {
            ctx.send_proto(
                leader,
                PigMsg::Direct(PaxosMsg::LearnReq { slots: missing }),
            );
        }
    }

    fn note_leader_contact(&mut self, leader: NodeId, now: SimTime) {
        self.known_leader = Some(leader);
        self.last_leader_contact = now;
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<PigMsg>) {
        let min = self.cfg.paxos.election_timeout_min.as_nanos();
        let max = self.cfg.paxos.election_timeout_max.as_nanos();
        let span = SimDuration::from_nanos(ctx.rng().gen_range(min..=max));
        self.election_timeout = span;
        ctx.set_timer(span, T_ELECTION);
    }

    // ---- quorum reads (§4.3) ---------------------------------------------

    fn start_quorum_read(
        &mut self,
        client: NodeId,
        request: paxi::RequestId,
        key: paxi::Key,
        ctx: &mut Ctx<PigMsg>,
    ) {
        let need = self.cluster.majority();
        let before = self.reads.len();
        let id = self.reads.start(client, request, key, need, ctx.now());
        // `start` supersedes any stuck read for the same request (a
        // client retry); reconcile the shared in-flight gauge.
        self.cluster.stats.note_pqr_started();
        let superseded = (before + 1).saturating_sub(self.reads.len());
        self.cluster.stats.note_pqr_finished(superseded as u64);
        self.probe_quorum_read(id, key, ctx);
    }

    /// Send (or re-send) the read probe: own answer first, then the
    /// relay-tree fan-out — per read (`QrRead`), or coalesced into the
    /// next probe wave when probe batching is on.
    fn probe_quorum_read(&mut self, id: u64, key: paxi::Key, ctx: &mut Ctx<PigMsg>) {
        let attempt = self.reads.attempt_of(id).unwrap_or(1);
        let own = self.acceptor.read_state(key);
        let still_collecting = self.feed_read_votes(id, attempt, vec![own], ctx);
        if !still_collecting {
            return;
        }
        if self.probes.enabled() {
            let probe = paxos::QrProbe { id, attempt, key };
            match self.probes.push(probe, ctx.now()) {
                ProbePush::Flush(probes) => self.send_probe_wave(probes, ctx),
                ProbePush::ArmTimer => self.arm_probe_hold_timer(ctx),
                ProbePush::Buffered => {}
            }
        } else {
            self.disseminate(
                PaxosMsg::QrRead {
                    reader: self.me,
                    id,
                    attempt,
                    key,
                },
                ctx,
            );
        }
    }

    /// Ship one coalesced probe wave down the relay tree. Probes whose
    /// read completed (or restarted onto a newer attempt) while they
    /// sat buffered are dropped first; the wave gate closes until every
    /// relay uplink returns or the wave timeout fires.
    fn send_probe_wave(&mut self, probes: Vec<paxos::QrProbe>, ctx: &mut Ctx<PigMsg>) {
        let probes: Vec<paxos::QrProbe> = probes
            .into_iter()
            .filter(|p| self.reads.attempt_of(p.id) == Some(p.attempt))
            .collect();
        if probes.is_empty() {
            return; // nothing live; the gate stays open
        }
        let wave = self.probes.next_wave();
        let mut relays = HashSet::new();
        self.disseminate_with(
            PaxosMsg::QrReadBatch {
                reader: self.me,
                wave,
                probes,
            },
            ctx,
            |relay| {
                relays.insert(relay);
            },
        );
        if !relays.is_empty() {
            self.probes.wave_opened(wave, relays);
            // Relays flush partial aggregates at `relay_timeout`; give
            // the uplinks one more timeout of slack before force-opening
            // the gate (a crashed relay must not wedge probe batching).
            ctx.set_timer(self.cfg.relay_timeout * 2, T_PROBE_WAVE | (wave << 8));
        }
    }

    /// Arm the probe hold timer for the buffer currently filling,
    /// tagging it with the buffer's generation so a timer armed for an
    /// already-shipped buffer cannot flush a later one early.
    fn arm_probe_hold_timer(&mut self, ctx: &mut Ctx<PigMsg>) {
        let gen = self.probes.generation();
        ctx.set_timer(self.probes.config().max_delay, T_PROBE_FLUSH | (gen << 8));
    }

    /// Feed probe answers for `attempt` into a pending read and act on
    /// the outcome. Returns true while the read still awaits more
    /// votes. Stale-attempt answers are dropped inside
    /// [`PendingReads::add_votes`].
    fn feed_read_votes(
        &mut self,
        id: u64,
        attempt: u32,
        votes: Vec<paxos::QrVoteEntry>,
        ctx: &mut Ctx<PigMsg>,
    ) -> bool {
        let Some((client, request)) = self.reads.client_of(id) else {
            return false; // already completed
        };
        match self.reads.add_votes(id, attempt, votes) {
            ReadOutcome::Pending => true,
            ReadOutcome::Done(value) => {
                self.cluster.stats.note_pqr_finished(1);
                ctx.reply(client, ClientReply::ok(request, value));
                false
            }
            ReadOutcome::Rinse => {
                ctx.set_timer(self.cfg.pqr_rinse_delay, T_PQR_RINSE | (id << 8));
                false
            }
        }
    }

    // ---- relay side ------------------------------------------------------

    fn handle_to_relay(
        &mut self,
        reply_to: NodeId,
        plan: RelayPlan,
        inner: PaxosMsg,
        threshold: usize,
        ctx: &mut Ctx<PigMsg>,
    ) {
        // 1. Forward down the tree.
        for &p in &plan.peers {
            ctx.send_proto(p, PigMsg::Direct(inner.clone()));
        }
        for (sub, subplan) in &plan.sub {
            ctx.send_proto(
                *sub,
                PigMsg::ToRelay {
                    reply_to: self.me,
                    plan: subplan.clone(),
                    inner: inner.clone(),
                    // Sub-relays answer for whole subtrees; thresholds are
                    // enforced at the top-level relay only.
                    threshold: 0,
                },
            );
        }
        let expect: HashSet<NodeId> = plan
            .peers
            .iter()
            .copied()
            .chain(plan.sub.iter().map(|(s, _)| *s))
            .collect();
        let deadline = ctx.now() + self.cfg.relay_timeout;

        // 2. Process locally and open the aggregation.
        match inner {
            PaxosMsg::P1a {
                ballot,
                from: report_from,
            } => {
                let own = self.acceptor.on_p1a(ballot, report_from);
                if own.ok {
                    self.note_leader_contact(ballot.node(), ctx.now());
                    if (self.leader.is_active() || self.leader.is_campaigning())
                        && ballot > self.leader.ballot()
                    {
                        self.abdicate(ballot.node(), ctx);
                    }
                }
                let flush = self.relays.open(
                    AggKey::P1(ballot),
                    reply_to,
                    expect,
                    VoteSet::P1(vec![own]),
                    threshold,
                    deadline,
                );
                if let Some(f) = flush {
                    self.send_flush(f, ctx);
                }
            }
            PaxosMsg::P2a {
                ballot,
                slot,
                command,
                commit_up_to,
            } => {
                let (own, adv) = self.acceptor.on_p2a(ballot, slot, command, commit_up_to);
                if own.ok {
                    self.note_leader_contact(ballot.node(), ctx.now());
                    if self.leader.is_active() && ballot > self.leader.ballot() {
                        self.abdicate(ballot.node(), ctx);
                    }
                }
                self.finish_advance(adv, ctx);
                let flush = self.relays.open(
                    AggKey::P2(ballot, slot),
                    reply_to,
                    expect,
                    VoteSet::P2(vec![own]),
                    threshold,
                    deadline,
                );
                if let Some(f) = flush {
                    self.send_flush(f, ctx);
                }
            }
            PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            } => {
                let batch_len = commands.len().max(1);
                let last_slot = first_slot + (batch_len - 1) as u64;
                let acc = self.accept_batch_local(ballot, first_slot, &commands, commit_up_to, ctx);
                let flush = self.relays.open(
                    AggKey::P2Span(ballot, first_slot, last_slot),
                    reply_to,
                    expect,
                    VoteSet::P2(acc.votes),
                    // The relay table counts individual votes; each group
                    // member contributes one vote per slot of the batch.
                    threshold * batch_len,
                    deadline,
                );
                if let Some(f) = flush {
                    self.send_flush(f, ctx);
                }
            }
            PaxosMsg::QrRead {
                reader,
                id,
                attempt,
                key,
            } => {
                let own = self.acceptor.read_state(key);
                let flush = self.relays.open(
                    AggKey::Qr(reader, id, attempt),
                    reply_to,
                    expect,
                    VoteSet::Qr(vec![own]),
                    threshold,
                    deadline,
                );
                if let Some(f) = flush {
                    self.send_flush(f, ctx);
                }
            }
            PaxosMsg::QrReadBatch {
                reader,
                wave,
                probes,
            } => {
                // Answer every probe of the wave in one pass, then
                // aggregate the group's answers exactly like a batched
                // phase-2 round (each member contributes one vote per
                // probe).
                let batch_len = probes.len().max(1);
                let own: Vec<paxos::QrProbeVote> = probes
                    .iter()
                    .map(|p| paxos::QrProbeVote {
                        id: p.id,
                        attempt: p.attempt,
                        entry: self.acceptor.read_state(p.key),
                    })
                    .collect();
                let flush = self.relays.open(
                    AggKey::QrBatch(reader, wave),
                    reply_to,
                    expect,
                    VoteSet::QrBatch(own),
                    threshold * batch_len,
                    deadline,
                );
                if let Some(f) = flush {
                    self.send_flush(f, ctx);
                }
            }
            // Fan-out-only messages: no aggregation.
            other => self.handle_direct_inner(reply_to, other, ctx),
        }
    }

    /// Ship a completed aggregation, possibly holding batched-round
    /// aggregates in the uplink coalescer so several accept rounds share
    /// one `P2bBatch` to the leader.
    fn send_flush(&mut self, f: Flush, ctx: &mut Ctx<PigMsg>) {
        let (msgs, arm) = self.coalescer.offer(f);
        for (to, msg) in msgs {
            ctx.send_proto(to, PigMsg::Direct(msg));
        }
        if arm && !self.agg_timer_armed {
            self.agg_timer_armed = true;
            ctx.set_timer(self.coalescer.window(), T_AGG_FLUSH);
        }
    }

    // ---- point-to-point Paxos semantics -----------------------------------

    fn handle_direct_inner(&mut self, from: NodeId, inner: PaxosMsg, ctx: &mut Ctx<PigMsg>) {
        match inner {
            PaxosMsg::P1a {
                ballot,
                from: report_from,
            } => {
                let vote = self.acceptor.on_p1a(ballot, report_from);
                if vote.ok {
                    self.note_leader_contact(ballot.node(), ctx.now());
                    if (self.leader.is_active() || self.leader.is_campaigning())
                        && ballot > self.leader.ballot()
                    {
                        self.abdicate(ballot.node(), ctx);
                    }
                }
                ctx.send_proto(
                    from,
                    PigMsg::Direct(PaxosMsg::P1b {
                        ballot: vote.ballot,
                        votes: vec![vote],
                    }),
                );
            }
            PaxosMsg::P2a {
                ballot,
                slot,
                command,
                commit_up_to,
            } => {
                let (vote, adv) = self.acceptor.on_p2a(ballot, slot, command, commit_up_to);
                if vote.ok {
                    self.note_leader_contact(ballot.node(), ctx.now());
                    if self.leader.is_active() && ballot > self.leader.ballot() {
                        self.abdicate(ballot.node(), ctx);
                    }
                }
                self.finish_advance(adv, ctx);
                ctx.send_proto(
                    from,
                    PigMsg::Direct(PaxosMsg::P2b {
                        ballot: vote.ballot,
                        slot,
                        votes: vec![vote],
                    }),
                );
            }
            PaxosMsg::P1b { ballot, mut votes } => {
                // A relay aggregation in progress takes precedence; the
                // leader path handles everything else.
                if let Some(f) =
                    self.relays
                        .add(AggKey::P1(ballot), from, VoteSet::P1(votes.clone()))
                {
                    self.send_flush(f, ctx);
                } else if self.leader.is_campaigning() && ballot == self.leader.ballot() {
                    // Promises from peers that compacted past our
                    // watermark carry a snapshot; it is installed
                    // before the vote is counted (see `paxos::catchup`).
                    paxos::install_p1b_snapshots(
                        &mut self.acceptor,
                        &mut self.sessions,
                        &self.cluster.stats,
                        &mut votes,
                    );
                    let watermark = self.acceptor.commit_watermark();
                    let outcome = self.leader.on_p1b_votes(votes, watermark);
                    self.handle_phase1_outcome(outcome, ctx);
                }
            }
            PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            } => {
                if let Some(f) =
                    self.relays
                        .add(AggKey::P2(ballot, slot), from, VoteSet::P2(votes.clone()))
                {
                    self.send_flush(f, ctx);
                } else if self.leader.is_active() && ballot == self.leader.ballot() {
                    match self.leader.on_p2b_votes(slot, votes) {
                        Ok(Some((slot, cmd, _))) => self.commit_and_execute(slot, cmd, ctx),
                        Ok(None) => {}
                        Err(higher) => self.abdicate(higher.node(), ctx),
                    }
                }
            }
            PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            } => {
                let last_slot = first_slot + commands.len().saturating_sub(1) as u64;
                let acc = self.accept_batch_local(ballot, first_slot, &commands, commit_up_to, ctx);
                ctx.send_proto(
                    from,
                    PigMsg::Direct(PaxosMsg::P2bBatch {
                        ballot: acc.reply_ballot,
                        first_slot,
                        last_slot,
                        votes: acc.votes,
                    }),
                );
            }
            PaxosMsg::P2bBatch {
                ballot,
                first_slot,
                last_slot,
                votes,
            } => {
                // A relay aggregation in progress takes precedence; the
                // leader path handles everything else.
                if let Some(f) = self.relays.add(
                    AggKey::P2Span(ballot, first_slot, last_slot),
                    from,
                    VoteSet::P2(votes.clone()),
                ) {
                    self.send_flush(f, ctx);
                } else {
                    self.count_batch_votes(ballot, votes, ctx);
                }
            }
            PaxosMsg::Heartbeat {
                ballot,
                commit_up_to,
            } => {
                if ballot >= self.acceptor.promised() {
                    self.note_leader_contact(ballot.node(), ctx.now());
                    let adv = self.acceptor.advance_commits(commit_up_to, ballot);
                    self.finish_advance(adv, ctx);
                }
            }
            PaxosMsg::LearnReq { slots } => {
                let ballot = self.acceptor.promised();
                match self.acceptor.serve_learn(&slots) {
                    Some(paxos::LearnAnswer::Entries(entries)) => {
                        ctx.send_proto(
                            from,
                            PigMsg::Direct(PaxosMsg::LearnRep { ballot, entries }),
                        );
                    }
                    Some(paxos::LearnAnswer::Snapshot(snapshot, entries)) => {
                        // The requested prefix was compacted away:
                        // catch the follower up from state, not slots.
                        ctx.send_proto(
                            from,
                            PigMsg::Direct(PaxosMsg::SnapshotTransfer {
                                ballot,
                                snapshot,
                                entries,
                            }),
                        );
                    }
                    None => {}
                }
            }
            PaxosMsg::LearnRep { ballot, entries } => {
                for (slot, cmd) in entries {
                    self.acceptor.commit(slot, ballot, cmd);
                }
                let executed = self.acceptor.execute_ready();
                self.reply_executed(executed, ctx);
            }
            PaxosMsg::SnapshotTransfer {
                ballot,
                snapshot,
                entries,
            } => {
                let executed = paxos::apply_snapshot_transfer(
                    &mut self.acceptor,
                    &mut self.sessions,
                    &self.cluster.stats,
                    ballot,
                    &snapshot,
                    entries,
                );
                self.reply_executed(executed, ctx);
            }
            PaxosMsg::QrRead {
                reader,
                id,
                attempt,
                key,
            } => {
                let entry = self.acceptor.read_state(key);
                ctx.send_proto(
                    from,
                    PigMsg::Direct(PaxosMsg::QrVote {
                        reader,
                        id,
                        attempt,
                        votes: vec![entry],
                    }),
                );
            }
            PaxosMsg::QrVote {
                reader,
                id,
                attempt,
                votes,
            } => {
                if reader == self.me {
                    // We are the proxy: count toward the pending read
                    // (stale-attempt answers are dropped inside).
                    self.feed_read_votes(id, attempt, votes, ctx);
                } else if let Some(f) =
                    self.relays
                        .add(AggKey::Qr(reader, id, attempt), from, VoteSet::Qr(votes))
                {
                    // We are a relay: aggregate toward the proxy.
                    self.send_flush(f, ctx);
                }
            }
            PaxosMsg::QrReadBatch {
                reader,
                wave,
                probes,
            } => {
                // A non-relay group member: answer the whole wave in
                // one message back to the relay.
                let votes = probes
                    .into_iter()
                    .map(|p| paxos::QrProbeVote {
                        id: p.id,
                        attempt: p.attempt,
                        entry: self.acceptor.read_state(p.key),
                    })
                    .collect();
                ctx.send_proto(
                    from,
                    PigMsg::Direct(PaxosMsg::QrVoteBatch {
                        reader,
                        wave,
                        votes,
                    }),
                );
            }
            PaxosMsg::QrVoteBatch {
                reader,
                wave,
                votes,
            } => {
                if reader == self.me {
                    // We are the proxy. The uplink may complete the
                    // wave and release the next one; do that first so a
                    // rinse restart triggered by these votes lands in
                    // the *following* wave, not a stale buffer.
                    match self.probes.on_uplink(wave, from) {
                        ProbeRelease::Flush(probes) => self.send_probe_wave(probes, ctx),
                        ProbeRelease::ArmTimer => self.arm_probe_hold_timer(ctx),
                        ProbeRelease::Idle => {}
                    }
                    // Group per-probe answers and feed each read once.
                    let mut grouped: HashMap<(u64, u32), Vec<paxos::QrVoteEntry>> = HashMap::new();
                    let mut order: Vec<(u64, u32)> = Vec::new();
                    for v in votes {
                        let key = (v.id, v.attempt);
                        let slot = grouped.entry(key).or_default();
                        if slot.is_empty() {
                            order.push(key);
                        }
                        slot.push(v.entry);
                    }
                    for key in order {
                        let entries = grouped.remove(&key).expect("grouped above");
                        self.feed_read_votes(key.0, key.1, entries, ctx);
                    }
                } else if let Some(f) =
                    self.relays
                        .add(AggKey::QrBatch(reader, wave), from, VoteSet::QrBatch(votes))
                {
                    // We are a relay: aggregate toward the proxy.
                    self.send_flush(f, ctx);
                }
            }
        }
    }
}

/// Build the dissemination plan for one group's peers.
///
/// `levels == 1` contacts every peer directly (the paper's default).
/// `levels >= 2` splits the peers into ~√k subgroups, each with its own
/// randomly chosen sub-relay (§6.3 multi-level trees). Groups too small
/// to split fall back to a flat plan.
pub fn build_plan(peers: Vec<NodeId>, levels: usize, rng: &mut StdRng) -> RelayPlan {
    if levels <= 1 || peers.len() < 4 {
        return RelayPlan::flat(peers);
    }
    let k = (peers.len() as f64).sqrt().ceil() as usize;
    let per = peers.len().div_ceil(k);
    let mut sub = Vec::with_capacity(k);
    for chunk in peers.chunks(per) {
        let i = rng.gen_range(0..chunk.len());
        let sub_relay = chunk[i];
        let rest: Vec<NodeId> = chunk.iter().copied().filter(|&n| n != sub_relay).collect();
        sub.push((sub_relay, build_plan(rest, levels - 1, rng)));
    }
    RelayPlan {
        peers: Vec::new(),
        sub,
    }
}

impl Replica<PigMsg> for PigReplica {
    fn on_start(&mut self, ctx: &mut Ctx<PigMsg>) {
        self.last_leader_contact = ctx.now();
        if self.me == self.cluster.leader {
            self.begin_campaign(ctx);
            ctx.set_timer(self.cfg.paxos.heartbeat_interval, T_HEARTBEAT);
        } else {
            self.arm_election_timer(ctx);
        }
        ctx.set_timer(self.cfg.paxos.p2_retry_timeout / 2, T_RETRY_SCAN);
        ctx.set_timer(self.cfg.relay_scan_interval, T_RELAY_SCAN);
        if let Some(interval) = self.cfg.reshuffle_interval {
            ctx.set_timer(interval, T_RESHUFFLE);
        }
    }

    fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<PigMsg>) {
        let cmd = req.command;
        // Exactly-once: a retry of the last executed command gets the
        // cached reply; anything older is a stale duplicate.
        if let Some(reply) = self.sessions.replay(cmd.id) {
            ctx.reply(client, reply.clone());
            return;
        }
        if self.sessions.is_stale(cmd.id) {
            return;
        }
        if self.leader.is_active() {
            // Admission (duplicate suppression, per-client sequencing,
            // batching) is shared with the direct Multi-Paxos replica;
            // only the dissemination in `propose_batch` differs.
            self.admit_and_propose(client, cmd, ctx);
        } else if self.cfg.pqr_reads && cmd.op.is_read() {
            // §4.3: serve reads from any replica via a quorum read over
            // the relay tree, keeping them entirely off the leader.
            if let Some(key) = cmd.op.key() {
                self.start_quorum_read(client, cmd.id, key, ctx);
            } else {
                ctx.reply(client, ClientReply::ok(cmd.id, None));
            }
        } else if self.leader.is_campaigning() || self.me == self.cluster.leader {
            self.leader.pending.push_back((client, cmd));
        } else {
            ctx.reply(client, ClientReply::redirect(cmd.id, self.known_leader));
        }
    }

    fn on_proto(&mut self, from: NodeId, msg: PigMsg, ctx: &mut Ctx<PigMsg>) {
        match msg {
            PigMsg::ToRelay {
                reply_to,
                plan,
                inner,
                threshold,
            } => {
                self.handle_to_relay(reply_to, plan, inner, threshold, ctx);
            }
            PigMsg::Direct(inner) => self.handle_direct_inner(from, inner, ctx),
        }
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<PigMsg>) {
        match kind & TIMER_TAG_MASK {
            T_ELECTION => {
                let idle = ctx.now().saturating_sub(self.last_leader_contact);
                if !self.leader.is_active()
                    && !self.leader.is_campaigning()
                    && idle >= self.election_timeout
                {
                    self.begin_campaign(ctx);
                    ctx.set_timer(self.cfg.paxos.heartbeat_interval, T_HEARTBEAT);
                }
                self.arm_election_timer(ctx);
            }
            T_HEARTBEAT => {
                if self.leader.is_active() {
                    let commit_up_to = self.acceptor.commit_watermark();
                    self.disseminate(
                        PaxosMsg::Heartbeat {
                            ballot: self.leader.ballot(),
                            commit_up_to,
                        },
                        ctx,
                    );
                    ctx.set_timer(self.cfg.paxos.heartbeat_interval, T_HEARTBEAT);
                } else if self.leader.is_campaigning() {
                    ctx.set_timer(self.cfg.paxos.heartbeat_interval, T_HEARTBEAT);
                }
            }
            T_RETRY_SCAN => {
                if self.leader.is_active() {
                    let stale = self
                        .leader
                        .stale_proposals(ctx.now(), self.cfg.paxos.p2_retry_timeout);
                    let ballot = self.leader.ballot();
                    let commit_up_to = self.acceptor.commit_watermark();
                    for (slot, command) in stale {
                        // Fresh random relays each retry (paper §3.4).
                        self.disseminate(
                            PaxosMsg::P2a {
                                ballot,
                                slot,
                                command,
                                commit_up_to,
                            },
                            ctx,
                        );
                    }
                }
                ctx.set_timer(self.cfg.paxos.p2_retry_timeout / 2, T_RETRY_SCAN);
            }
            T_RELAY_SCAN => {
                for f in self.relays.expire(ctx.now()) {
                    self.send_flush(f, ctx);
                }
                // Piggyback the quorum-read starvation sweep: a read
                // whose current attempt has waited far longer than any
                // healthy probe round (votes lost to crashes) is handed
                // to the leader instead of leaking in the table.
                if !self.reads.is_empty() {
                    let max_age = self.cfg.relay_timeout * 4
                        + self.cfg.pqr_rinse_delay * self.cfg.pqr_max_attempts as u64;
                    let expired = self.reads.expire(ctx.now(), max_age);
                    self.cluster.stats.note_pqr_finished(expired.len() as u64);
                    for (client, request) in expired {
                        ctx.reply(client, ClientReply::redirect(request, self.known_leader));
                    }
                }
                ctx.set_timer(self.cfg.relay_scan_interval, T_RELAY_SCAN);
            }
            T_RESHUFFLE => {
                self.groups.reshuffle(ctx.rng());
                if let Some(interval) = self.cfg.reshuffle_interval {
                    ctx.set_timer(interval, T_RESHUFFLE);
                }
            }
            T_LEARN => self.send_learn_request(ctx),
            T_BATCH if self.leader.is_active() => {
                let batch = self.lane.on_flush_timer();
                self.propose_batch(batch, ctx);
            }
            T_REPLY => {
                self.reply_timer_armed = false;
                self.replies.flush_into(ctx);
            }
            T_AGG_FLUSH => {
                self.agg_timer_armed = false;
                for (to, msg) in self.coalescer.flush_all() {
                    ctx.send_proto(to, PigMsg::Direct(msg));
                }
            }
            T_PQR_RINSE => {
                let id = kind >> 8;
                match self.reads.restart(id, ctx.now()) {
                    Some((_client, key, attempt)) if attempt <= self.cfg.pqr_max_attempts => {
                        self.probe_quorum_read(id, key, ctx);
                    }
                    Some(_) => {
                        // Too many rinses: hand the client to the leader,
                        // which serializes the read through the log.
                        if let Some((client, request)) = self.reads.abort(id) {
                            self.cluster.stats.note_pqr_finished(1);
                            ctx.reply(client, ClientReply::redirect(request, self.known_leader));
                        }
                    }
                    None => {}
                }
            }
            T_PROBE_FLUSH => {
                let generation = kind >> 8;
                if let Some(probes) = self.probes.on_hold_timer(generation) {
                    self.send_probe_wave(probes, ctx);
                }
            }
            T_PROBE_WAVE => {
                let wave = kind >> 8;
                match self.probes.on_wave_timeout(wave) {
                    ProbeRelease::Flush(probes) => self.send_probe_wave(probes, ctx),
                    ProbeRelease::ArmTimer => self.arm_probe_hold_timer(ctx),
                    ProbeRelease::Idle => {}
                }
            }
            _ => {}
        }
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.acceptor.kv().fingerprint())
    }
}

/// [`PigConfig`] is the protocol's [`paxi::ProtocolSpec`]: hand it to
/// [`paxi::Experiment`] to run PigPaxos on any topology and either
/// execution substrate. Clients default to the stable leader; with
/// [`PigConfig::pqr_reads`] enabled they spread uniformly over all
/// replicas so follower proxies serve the reads (§4.3).
impl paxi::ProtocolSpec for PigConfig {
    type Msg = PigMsg;

    fn protocol_name(&self) -> &'static str {
        "pigpaxos"
    }

    fn build_replica(
        &self,
        node: NodeId,
        cluster: &ClusterConfig,
    ) -> Box<dyn Actor<Envelope<PigMsg>> + Send> {
        Box::new(ReplicaActor(PigReplica::new(
            node,
            cluster.clone(),
            self.clone(),
        )))
    }

    fn default_target(&self, replicas: &[NodeId]) -> paxi::TargetPolicy {
        if self.pqr_reads {
            paxi::TargetPolicy::Random(replicas.to_vec())
        } else {
            paxi::TargetPolicy::Fixed(replicas[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Experiment, TargetPolicy};
    use simnet::Control;

    fn exp(n: usize, clients: usize, groups: usize) -> Experiment<PigConfig> {
        with_cfg(PigConfig::lan(groups), n, clients)
    }

    fn with_cfg(cfg: PigConfig, n: usize, clients: usize) -> Experiment<PigConfig> {
        Experiment::lan(cfg, n)
            .clients(clients)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
    }

    #[test]
    fn five_nodes_two_groups_commit() {
        let r = exp(5, 4, 2).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.decided > 50);
    }

    #[test]
    fn twentyfive_nodes_three_groups_commit() {
        let r = exp(25, 8, 3).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0);
        // Paper Table 1: leader handles Ml = 2r + 2 = 8 messages per op.
        assert!(
            (r.leader_msgs_per_op - 8.0).abs() < 2.0,
            "expected ≈8 leader msgs/op with r=3, got {}",
            r.leader_msgs_per_op
        );
    }

    #[test]
    fn leader_load_grows_with_group_count() {
        let r2 = exp(25, 8, 2).run_sim(paxi::DEFAULT_SEED);
        let r6 = exp(25, 8, 6).run_sim(paxi::DEFAULT_SEED);
        assert!(
            r6.leader_msgs_per_op > r2.leader_msgs_per_op + 5.0,
            "r=6 leader ({}) must be busier than r=2 leader ({})",
            r6.leader_msgs_per_op,
            r2.leader_msgs_per_op
        );
    }

    #[test]
    fn follower_crash_in_group_tolerated() {
        let r = exp(25, 8, 3).run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            sim.schedule_control(SimTime::from_millis(100), Control::Crash(NodeId(5)));
        });
        assert!(r.violations.is_empty());
        assert!(
            r.throughput > 100.0,
            "one crashed follower must not halt progress"
        );
    }

    #[test]
    fn multi_level_plan_covers_everyone() {
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        let peers: Vec<NodeId> = (1..=12).map(NodeId).collect();
        let plan = build_plan(peers.clone(), 2, &mut rng);
        assert!(plan.peers.is_empty(), "2-level plan delegates everything");
        assert!(!plan.sub.is_empty());
        // All peers reachable: sub-relays + their plans cover the set.
        let mut covered: Vec<NodeId> = Vec::new();
        for (s, p) in &plan.sub {
            covered.push(*s);
            covered.extend(&p.peers);
            assert!(p.sub.is_empty(), "depth capped at 2");
        }
        covered.sort();
        assert_eq!(covered, peers);
    }

    #[test]
    fn multi_level_cluster_commits() {
        let mut cfg = PigConfig::lan(2);
        cfg.levels = 2;
        let r = with_cfg(cfg, 25, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0, "2-level trees must still commit");
    }

    #[test]
    fn partial_threshold_cluster_commits() {
        let mut cfg = PigConfig::lan(3);
        // 25 nodes, 3 groups of 8: relays may respond after 5 votes each
        // (3×5 = 15 > majority 13, satisfying §4.2's constraint).
        cfg.partial_threshold = Some(5);
        let r = with_cfg(cfg, 25, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0);
    }

    #[test]
    fn reshuffle_cluster_commits() {
        let mut cfg = PigConfig::lan(3);
        cfg.reshuffle_interval = Some(SimDuration::from_millis(100));
        let r = with_cfg(cfg, 9, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0);
    }

    #[test]
    fn leader_crash_triggers_reelection() {
        let r = exp(5, 2, 2)
            .measure(SimDuration::from_secs(3))
            .target(TargetPolicy::Random((0..5).map(NodeId).collect()))
            .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
                sim.schedule_control(SimTime::from_millis(600), Control::Crash(NodeId(0)));
            });
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(
            r.throughput > 30.0,
            "new leader must emerge, got {}",
            r.throughput
        );
    }

    #[test]
    fn relay_timeout_delivers_partial_votes() {
        // Crash one node; the relay of its group must still answer within
        // the 50ms relay timeout, so commits continue at full speed.
        let r = exp(9, 4, 2).run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            sim.schedule_control(SimTime::from_millis(50), Control::Crash(NodeId(8)));
        });
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0);
        assert!(
            r.mean_latency_ms < 20.0,
            "commits must not wait for the crashed node: {}ms",
            r.mean_latency_ms
        );
    }

    #[test]
    fn pqr_config_spreads_default_target() {
        use paxi::ProtocolSpec;
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        assert!(matches!(
            PigConfig::lan(2).default_target(&nodes),
            TargetPolicy::Fixed(NodeId(0))
        ));
        let mut pqr = PigConfig::lan(2);
        pqr.pqr_reads = true;
        assert!(matches!(
            pqr.default_target(&nodes),
            TargetPolicy::Random(v) if v.len() == 5
        ));
    }
}
