//! # pigpaxos — relay/aggregate communication for single-leader consensus
//!
//! Rust reproduction of *PigPaxos: Devouring the Communication
//! Bottlenecks in Distributed Consensus* (Charapko, Ailijiang, Demirbas;
//! SIGMOD 2021).
//!
//! PigPaxos is Multi-Paxos with the leader↔follower communication
//! replaced by a dynamically rotating relay tree:
//!
//! 1. Followers are statically partitioned into **relay groups**
//!    ([`RelayGroups`], built from a [`GroupSpec`]).
//! 2. Each round the leader sends its phase message to **one random
//!    node per group**, which relays it to the rest of the group.
//! 3. Relays **aggregate** their group's responses into a single
//!    combined message back to the leader ([`relay::RelayTable`]).
//!
//! Decision-making is untouched — this crate reuses the `paxos` crate's
//! [`paxos::Leader`] and [`paxos::Acceptor`] state machines verbatim, so
//! Paxos's safety argument carries over, as the paper argues in §3.3.
//!
//! Optimizations from the paper also implemented here:
//! - relay timeouts and leader re-dissemination through fresh relays
//!   (§3.4 fault tolerance),
//! - partial response collection thresholds (§4.2),
//! - dynamic relay-group reshuffling (§4.1),
//! - multi-level relay trees (§6.3),
//! - region-aligned groups for WAN deployments (§6.4) via
//!   [`GroupSpec::Explicit`].
//!
//! ## Quickstart
//!
//! ```
//! use paxi::Experiment;
//! use pigpaxos::PigConfig;
//! use simnet::SimDuration;
//!
//! // 9 replicas in 3 relay groups, 4 closed-loop clients:
//! let result = Experiment::lan(PigConfig::lan(3), 9)
//!     .clients(4)
//!     .warmup(SimDuration::from_millis(200))
//!     .measure(SimDuration::from_millis(300))
//!     .run_sim(paxi::DEFAULT_SEED);
//! assert!(result.violations.is_empty());
//! assert!(result.throughput > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod groups;
pub mod messages;
pub mod pqr;
pub mod probe_batch;
pub mod relay;
pub mod replica;

pub use config::PigConfig;
pub use groups::{GroupSpec, RelayGroups};
pub use messages::{PigMsg, RelayPlan};
pub use pqr::{PendingReads, ReadOutcome};
pub use probe_batch::{ProbeBatcher, ProbePush};
pub use relay::UplinkCoalescer;
pub use replica::{build_plan, PigReplica};
