//! Relay-side aggregation state.
//!
//! A relay that forwarded a phase message tracks one `PendingAgg` per
//! in-flight round: which nodes still owe responses, the votes collected
//! so far, and a deadline. Votes are flushed to the requester when the
//! group is complete, when the partial-response threshold (§4.2) is met,
//! immediately on any rejection (paper footnote 2), or when the relay
//! timeout expires (§3.4).
//!
//! On top of per-round aggregation, [`UplinkCoalescer`] lets a relay
//! merge *several completed batched rounds'* aggregates into one uplink
//! `P2bBatch` — the second multiplier on top of leader-side command
//! batching: `P2bVote`s carry their own slots, so the leader's per-slot
//! grouping decodes a multi-round span exactly like a single round.

use paxi::Ballot;
use paxos::{P1bVote, P2bVote, PaxosMsg, QrProbeVote, QrVoteEntry};
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifies one aggregation round at a relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKey {
    /// Phase-1 for a ballot.
    P1(Ballot),
    /// Phase-2 for (ballot, slot).
    P2(Ballot, u64),
    /// Batched phase-2 for (ballot, first slot, last slot) — the
    /// leader-side command-batching fast path. Votes carry their own
    /// slots, so aggregation is still plain concatenation.
    P2Span(Ballot, u64, u64),
    /// A quorum read for (reader proxy, read id, attempt) — §4.3. The
    /// attempt keys the round so a re-probe after a rinse restart opens
    /// a *fresh* aggregation instead of topping up the stale one.
    Qr(NodeId, u64, u32),
    /// A batched quorum-read wave for (reader proxy, wave id): several
    /// reads' probes disseminated and aggregated as one round.
    QrBatch(NodeId, u64),
}

/// Collected votes (phase-matched with the key).
#[derive(Debug, Clone)]
pub enum VoteSet {
    /// Phase-1b promises.
    P1(Vec<P1bVote>),
    /// Phase-2b acks.
    P2(Vec<P2bVote>),
    /// Quorum-read answers.
    Qr(Vec<QrVoteEntry>),
    /// Batched quorum-read answers (one entry per probe of the wave).
    QrBatch(Vec<QrProbeVote>),
}

impl VoteSet {
    fn len(&self) -> usize {
        match self {
            VoteSet::P1(v) => v.len(),
            VoteSet::P2(v) => v.len(),
            VoteSet::Qr(v) => v.len(),
            VoteSet::QrBatch(v) => v.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn has_rejection(&self) -> bool {
        match self {
            VoteSet::P1(v) => v.iter().any(|x| !x.ok),
            VoteSet::P2(v) => v.iter().any(|x| !x.ok),
            VoteSet::Qr(_) | VoteSet::QrBatch(_) => false, // reads have no rejections
        }
    }

    fn append(&mut self, other: VoteSet) {
        match (self, other) {
            (VoteSet::P1(a), VoteSet::P1(b)) => a.extend(b),
            (VoteSet::P2(a), VoteSet::P2(b)) => a.extend(b),
            (VoteSet::Qr(a), VoteSet::Qr(b)) => a.extend(b),
            (VoteSet::QrBatch(a), VoteSet::QrBatch(b)) => a.extend(b),
            _ => debug_assert!(false, "phase-mismatched vote aggregation"),
        }
    }

    fn take(&mut self) -> VoteSet {
        match self {
            VoteSet::P1(v) => VoteSet::P1(std::mem::take(v)),
            VoteSet::P2(v) => VoteSet::P2(std::mem::take(v)),
            VoteSet::Qr(v) => VoteSet::Qr(std::mem::take(v)),
            VoteSet::QrBatch(v) => VoteSet::QrBatch(std::mem::take(v)),
        }
    }

    /// Render as the Paxos response message for `key`.
    pub fn into_message(self, key: AggKey) -> PaxosMsg {
        match (self, key) {
            (VoteSet::P1(votes), AggKey::P1(ballot)) => PaxosMsg::P1b { ballot, votes },
            (VoteSet::P2(votes), AggKey::P2(ballot, slot)) => PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            },
            (VoteSet::P2(votes), AggKey::P2Span(ballot, first_slot, last_slot)) => {
                PaxosMsg::P2bBatch {
                    ballot,
                    first_slot,
                    last_slot,
                    votes,
                }
            }
            (VoteSet::Qr(votes), AggKey::Qr(reader, id, attempt)) => PaxosMsg::QrVote {
                reader,
                id,
                attempt,
                votes,
            },
            (VoteSet::QrBatch(votes), AggKey::QrBatch(reader, wave)) => PaxosMsg::QrVoteBatch {
                reader,
                wave,
                votes,
            },
            _ => unreachable!("phase-mismatched key/votes"),
        }
    }
}

#[derive(Debug)]
struct PendingAgg {
    reply_to: NodeId,
    expect: HashSet<NodeId>,
    votes: VoteSet,
    deadline: SimTime,
    threshold: usize,
    flushed_once: bool,
    collected: usize,
}

/// An aggregate ready to send.
#[derive(Debug)]
pub struct Flush {
    /// Destination (leader or parent relay).
    pub reply_to: NodeId,
    /// The round.
    pub key: AggKey,
    /// Votes to include.
    pub votes: VoteSet,
}

/// All in-flight aggregations at one relay node.
#[derive(Debug, Default)]
pub struct RelayTable {
    pending: HashMap<AggKey, PendingAgg>,
}

impl RelayTable {
    /// Empty table.
    pub fn new() -> Self {
        RelayTable::default()
    }

    /// Number of in-flight aggregations.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Open an aggregation round seeded with the relay's own vote.
    /// Returns an immediate flush when nothing else is expected or the
    /// own vote is a rejection.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        key: AggKey,
        reply_to: NodeId,
        expect: HashSet<NodeId>,
        own_vote: VoteSet,
        threshold: usize,
        deadline: SimTime,
    ) -> Option<Flush> {
        let collected = own_vote.len();
        if expect.is_empty() || own_vote.has_rejection() {
            return Some(Flush {
                reply_to,
                key,
                votes: own_vote,
            });
        }
        if threshold > 0 && collected >= threshold {
            // Own vote already satisfies the partial threshold: flush it
            // and keep collecting the rest.
            self.pending.insert(
                key,
                PendingAgg {
                    reply_to,
                    expect,
                    votes: match &own_vote {
                        VoteSet::P1(_) => VoteSet::P1(Vec::new()),
                        VoteSet::P2(_) => VoteSet::P2(Vec::new()),
                        VoteSet::Qr(_) => VoteSet::Qr(Vec::new()),
                        VoteSet::QrBatch(_) => VoteSet::QrBatch(Vec::new()),
                    },
                    deadline,
                    threshold,
                    flushed_once: true,
                    collected,
                },
            );
            return Some(Flush {
                reply_to,
                key,
                votes: own_vote,
            });
        }
        self.pending.insert(
            key,
            PendingAgg {
                reply_to,
                expect,
                votes: own_vote,
                deadline,
                threshold,
                flushed_once: false,
                collected,
            },
        );
        None
    }

    /// Record votes arriving from `from` (a follower or sub-relay).
    /// Returns a flush when the round completes, hits its threshold, or
    /// contains a rejection. Unknown keys (late/duplicate votes after a
    /// flush) return `None`.
    pub fn add(&mut self, key: AggKey, from: NodeId, votes: VoteSet) -> Option<Flush> {
        let agg = self.pending.get_mut(&key)?;
        if !agg.expect.remove(&from) {
            return None; // unsolicited or duplicate
        }
        agg.collected += votes.len();
        let reject = votes.has_rejection();
        agg.votes.append(votes);

        let complete = agg.expect.is_empty();
        let threshold_hit =
            agg.threshold > 0 && !agg.flushed_once && agg.collected >= agg.threshold;

        if complete || reject {
            let agg = self.pending.remove(&key).expect("present");
            if agg.votes.is_empty() {
                return None; // everything already flushed
            }
            return Some(Flush {
                reply_to: agg.reply_to,
                key,
                votes: agg.votes,
            });
        }
        if threshold_hit {
            agg.flushed_once = true;
            let out = agg.votes.take();
            return Some(Flush {
                reply_to: agg.reply_to,
                key,
                votes: out,
            });
        }
        None
    }

    /// Flush and drop every aggregation whose deadline has passed
    /// (the relay timeout of §3.4).
    pub fn expire(&mut self, now: SimTime) -> Vec<Flush> {
        let expired: Vec<AggKey> = self
            .pending
            .iter()
            .filter(|(_, a)| a.deadline <= now)
            .map(|(&k, _)| k)
            .collect();
        let mut out = Vec::new();
        for key in expired {
            let agg = self.pending.remove(&key).expect("present");
            if !agg.votes.is_empty() {
                out.push(Flush {
                    reply_to: agg.reply_to,
                    key,
                    votes: agg.votes,
                });
            }
        }
        out
    }
}

#[derive(Debug)]
struct SpanBuf {
    first_slot: u64,
    last_slot: u64,
    votes: Vec<P2bVote>,
    rounds: usize,
}

/// Coalesces completed batched-round aggregates bound for the same
/// destination into one multi-round `P2bBatch` uplink.
///
/// Only all-ok `P2Span` flushes are buffered; every other flush (single
/// rounds, phase-1, quorum reads, and anything carrying a rejection)
/// passes straight through — and a rejection additionally forces the
/// buffer out, so preemption signals are never delayed.
#[derive(Debug)]
pub struct UplinkCoalescer {
    window: SimDuration,
    max_rounds: usize,
    buf: BTreeMap<(NodeId, Ballot), SpanBuf>,
}

impl UplinkCoalescer {
    /// Coalesce for up to `window` or `max_rounds` rounds per uplink.
    /// A zero `window` disables coalescing entirely.
    pub fn new(window: SimDuration, max_rounds: usize) -> Self {
        UplinkCoalescer {
            window,
            max_rounds: max_rounds.max(1),
            buf: BTreeMap::new(),
        }
    }

    /// A pass-through coalescer (every flush ships immediately).
    pub fn disabled() -> Self {
        UplinkCoalescer::new(SimDuration::ZERO, 1)
    }

    /// The configured coalescing window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Offer a completed aggregation flush. Returns the messages to
    /// send now and whether this call started a coalescing window (the
    /// caller arms the flush timer).
    pub fn offer(&mut self, f: Flush) -> (Vec<(NodeId, PaxosMsg)>, bool) {
        let coalescable = self.window > SimDuration::ZERO
            && matches!(f.key, AggKey::P2Span(..))
            && !f.votes.has_rejection();
        if !coalescable {
            // Rejections must not arrive after younger coalesced votes:
            // drain the buffer first, then the pass-through flush.
            let mut out = if f.votes.has_rejection() {
                self.flush_all()
            } else {
                Vec::new()
            };
            out.push((f.reply_to, f.votes.into_message(f.key)));
            return (out, false);
        }
        let AggKey::P2Span(ballot, first, last) = f.key else {
            unreachable!("checked coalescable");
        };
        let VoteSet::P2(votes) = f.votes else {
            unreachable!("P2Span flushes carry P2 votes");
        };
        let was_empty = self.buf.is_empty();
        let entry = self.buf.entry((f.reply_to, ballot)).or_insert(SpanBuf {
            first_slot: first,
            last_slot: last,
            votes: Vec::new(),
            rounds: 0,
        });
        entry.first_slot = entry.first_slot.min(first);
        entry.last_slot = entry.last_slot.max(last);
        entry.votes.extend(votes);
        entry.rounds += 1;
        if entry.rounds >= self.max_rounds {
            let key = (f.reply_to, ballot);
            let buf = self.buf.remove(&key).expect("present");
            return (vec![(f.reply_to, Self::into_msg(ballot, buf))], false);
        }
        (Vec::new(), was_empty)
    }

    /// Drain every buffered span (the coalesce-window timer).
    pub fn flush_all(&mut self) -> Vec<(NodeId, PaxosMsg)> {
        std::mem::take(&mut self.buf)
            .into_iter()
            .map(|((reply_to, ballot), buf)| (reply_to, Self::into_msg(ballot, buf)))
            .collect()
    }

    fn into_msg(ballot: Ballot, buf: SpanBuf) -> PaxosMsg {
        PaxosMsg::P2bBatch {
            ballot,
            first_slot: buf.first_slot,
            last_slot: buf.last_slot,
            votes: buf.votes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Ballot {
        Ballot::new(1, NodeId(0))
    }

    fn own_p2(node: u32, ok: bool) -> VoteSet {
        VoteSet::P2(vec![P2bVote {
            node: NodeId(node),
            ballot: b(),
            slot: 7,
            ok,
        }])
    }

    fn peer_p2(node: u32) -> VoteSet {
        own_p2(node, true)
    }

    fn expect(nodes: &[u32]) -> HashSet<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    const KEY: AggKey = AggKey::P2(Ballot::ZERO, 7);

    fn key() -> AggKey {
        AggKey::P2(b(), 7)
    }

    #[test]
    fn completes_when_all_respond() {
        let mut t = RelayTable::new();
        assert!(t
            .open(
                key(),
                NodeId(0),
                expect(&[2, 3]),
                own_p2(1, true),
                0,
                SimTime::from_millis(50)
            )
            .is_none());
        assert!(t.add(key(), NodeId(2), peer_p2(2)).is_none());
        let f = t.add(key(), NodeId(3), peer_p2(3)).expect("complete");
        assert_eq!(f.reply_to, NodeId(0));
        assert_eq!(f.votes.len(), 3, "own + 2 peers");
        assert!(t.is_empty());
    }

    #[test]
    fn empty_expectation_flushes_immediately() {
        let mut t = RelayTable::new();
        let f = t
            .open(
                key(),
                NodeId(0),
                HashSet::new(),
                own_p2(1, true),
                0,
                SimTime::ZERO,
            )
            .expect("immediate");
        assert_eq!(f.votes.len(), 1);
    }

    #[test]
    fn rejection_fast_path_on_own_vote() {
        let mut t = RelayTable::new();
        let f = t
            .open(
                key(),
                NodeId(0),
                expect(&[2]),
                own_p2(1, false),
                0,
                SimTime::ZERO,
            )
            .expect("reject flushes now");
        assert!(matches!(f.votes, VoteSet::P2(ref v) if !v[0].ok));
        assert!(t.is_empty(), "round abandoned after rejection");
    }

    #[test]
    fn rejection_fast_path_on_peer_vote() {
        let mut t = RelayTable::new();
        t.open(
            key(),
            NodeId(0),
            expect(&[2, 3]),
            own_p2(1, true),
            0,
            SimTime::from_millis(50),
        );
        let f = t
            .add(key(), NodeId(2), own_p2(2, false))
            .expect("reject flushes");
        assert_eq!(f.votes.len(), 2);
        assert!(t.is_empty());
        // Late vote from node 3 is dropped silently.
        assert!(t.add(key(), NodeId(3), peer_p2(3)).is_none());
    }

    #[test]
    fn unsolicited_votes_ignored() {
        let mut t = RelayTable::new();
        t.open(
            key(),
            NodeId(0),
            expect(&[2]),
            own_p2(1, true),
            0,
            SimTime::from_millis(50),
        );
        assert!(
            t.add(key(), NodeId(9), peer_p2(9)).is_none(),
            "node 9 not expected"
        );
        assert!(
            t.add(KEY, NodeId(2), peer_p2(2)).is_none(),
            "different ballot key"
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn threshold_sends_partial_then_remainder() {
        let mut t = RelayTable::new();
        // Group of 4 peers, threshold 3 (own + 2).
        t.open(
            key(),
            NodeId(0),
            expect(&[2, 3, 4, 5]),
            own_p2(1, true),
            3,
            SimTime::from_millis(50),
        );
        assert!(t.add(key(), NodeId(2), peer_p2(2)).is_none());
        let first = t.add(key(), NodeId(3), peer_p2(3)).expect("threshold hit");
        assert_eq!(first.votes.len(), 3);
        assert_eq!(t.len(), 1, "still collecting the rest");
        assert!(t.add(key(), NodeId(4), peer_p2(4)).is_none());
        let second = t.add(key(), NodeId(5), peer_p2(5)).expect("completion");
        assert_eq!(
            second.votes.len(),
            2,
            "only the votes after the partial flush"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn threshold_met_by_own_vote_alone() {
        let mut t = RelayTable::new();
        let f = t
            .open(
                key(),
                NodeId(0),
                expect(&[2]),
                own_p2(1, true),
                1,
                SimTime::from_millis(50),
            )
            .expect("own vote satisfies threshold 1");
        assert_eq!(f.votes.len(), 1);
        // Remainder still tracked.
        let rest = t.add(key(), NodeId(2), peer_p2(2)).expect("completion");
        assert_eq!(rest.votes.len(), 1);
    }

    #[test]
    fn expiry_flushes_partial_votes() {
        let mut t = RelayTable::new();
        t.open(
            key(),
            NodeId(0),
            expect(&[2, 3]),
            own_p2(1, true),
            0,
            SimTime::from_millis(50),
        );
        t.add(key(), NodeId(2), peer_p2(2));
        assert!(t.expire(SimTime::from_millis(49)).is_empty(), "not due yet");
        let flushed = t.expire(SimTime::from_millis(50));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].votes.len(), 2, "own + node 2, node 3 timed out");
        assert!(t.is_empty());
    }

    #[test]
    fn expiry_after_partial_flush_sends_only_new_votes() {
        let mut t = RelayTable::new();
        t.open(
            key(),
            NodeId(0),
            expect(&[2, 3, 4]),
            own_p2(1, true),
            2,
            SimTime::from_millis(50),
        );
        let first = t.add(key(), NodeId(2), peer_p2(2)).expect("partial");
        assert_eq!(first.votes.len(), 2);
        t.add(key(), NodeId(3), peer_p2(3));
        let flushed = t.expire(SimTime::from_millis(60));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].votes.len(), 1, "only node 3's vote is new");
    }

    #[test]
    fn expired_empty_rounds_drop_silently() {
        let mut t = RelayTable::new();
        t.open(
            key(),
            NodeId(0),
            expect(&[2]),
            own_p2(1, true),
            1,
            SimTime::from_millis(50),
        );
        // Threshold 1 flushed own vote at open; nothing new arrives.
        let flushed = t.expire(SimTime::from_millis(60));
        assert!(flushed.is_empty());
        assert!(t.is_empty());
    }

    fn span_flush(reply_to: u32, first: u64, last: u64, ok: bool) -> Flush {
        let votes: Vec<P2bVote> = (first..=last)
            .map(|s| P2bVote {
                node: NodeId(1),
                ballot: b(),
                slot: s,
                ok,
            })
            .collect();
        Flush {
            reply_to: NodeId(reply_to),
            key: AggKey::P2Span(b(), first, last),
            votes: VoteSet::P2(votes),
        }
    }

    #[test]
    fn coalescer_merges_rounds_into_one_uplink() {
        let mut c = UplinkCoalescer::new(SimDuration::from_micros(250), 4);
        let (out, arm) = c.offer(span_flush(0, 0, 3, true));
        assert!(out.is_empty(), "first round buffered");
        assert!(arm, "first buffered round starts the window");
        let (out, arm) = c.offer(span_flush(0, 4, 7, true));
        assert!(out.is_empty() && !arm, "second round joins the buffer");
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 1, "two rounds, one uplink message");
        match &flushed[0].1 {
            PaxosMsg::P2bBatch {
                first_slot,
                last_slot,
                votes,
                ..
            } => {
                assert_eq!((*first_slot, *last_slot), (0, 7), "span widened");
                assert_eq!(votes.len(), 8, "all votes of both rounds");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.is_empty());
    }

    #[test]
    fn coalescer_round_cap_flushes_immediately() {
        let mut c = UplinkCoalescer::new(SimDuration::from_micros(250), 2);
        assert!(c.offer(span_flush(0, 0, 1, true)).0.is_empty());
        let (out, _) = c.offer(span_flush(0, 2, 3, true));
        assert_eq!(out.len(), 1, "round cap ships the merged uplink");
        assert!(c.is_empty());
    }

    #[test]
    fn coalescer_rejection_drains_buffer_and_passes_through() {
        let mut c = UplinkCoalescer::new(SimDuration::from_micros(250), 8);
        c.offer(span_flush(0, 0, 1, true));
        let (out, arm) = c.offer(span_flush(0, 2, 3, false));
        assert!(!arm);
        assert_eq!(out.len(), 2, "buffered span + the rejection itself");
        match &out[1].1 {
            PaxosMsg::P2bBatch { votes, .. } => assert!(votes.iter().all(|v| !v.ok)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.is_empty());
    }

    #[test]
    fn coalescer_disabled_and_non_span_pass_through() {
        let mut c = UplinkCoalescer::disabled();
        let (out, arm) = c.offer(span_flush(0, 0, 3, true));
        assert_eq!(out.len(), 1);
        assert!(!arm);

        let mut c = UplinkCoalescer::new(SimDuration::from_micros(250), 4);
        let single = Flush {
            reply_to: NodeId(0),
            key: AggKey::P2(b(), 7),
            votes: own_p2(1, true),
        };
        let (out, arm) = c.offer(single);
        assert_eq!(out.len(), 1, "single-slot rounds never coalesce");
        assert!(!arm);
        assert!(c.is_empty());
    }

    #[test]
    fn coalescer_keeps_destinations_separate() {
        let mut c = UplinkCoalescer::new(SimDuration::from_micros(250), 8);
        c.offer(span_flush(0, 0, 1, true));
        c.offer(span_flush(5, 2, 3, true));
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 2, "one uplink per destination");
        assert_eq!(flushed[0].0, NodeId(0));
        assert_eq!(flushed[1].0, NodeId(5));
    }

    #[test]
    fn into_message_round_trips() {
        let votes = VoteSet::P2(vec![P2bVote {
            node: NodeId(1),
            ballot: b(),
            slot: 7,
            ok: true,
        }]);
        match votes.into_message(AggKey::P2(b(), 7)) {
            PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            } => {
                assert_eq!(ballot, b());
                assert_eq!(slot, 7);
                assert_eq!(votes.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
