//! Relay-group construction and per-round relay selection.
//!
//! PigPaxos statically partitions the followers into relay groups (§3.2).
//! Each round the leader picks one *random* member of each group as that
//! round's relay — the rotation that prevents relays from becoming
//! hotspots (§3.2, §6.1). Groups may be built by contiguous chunking, by
//! an explicit assignment (e.g. one group per WAN region, §6.4), and may
//! be reshuffled on the fly (§4.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::NodeId;

/// How to partition followers into relay groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupSpec {
    /// Split the followers into `r` contiguous, near-equal chunks.
    Chunks(usize),
    /// Explicit groups (node ids must be followers; groups must be
    /// disjoint and cover all followers).
    Explicit(Vec<Vec<NodeId>>),
}

impl GroupSpec {
    /// One relay group per topology region, with `leader` excluded from
    /// its own region's group — the paper's §6.4 WAN deployment, where
    /// the leader sends one message per remote *region* instead of one
    /// per remote replica. Regions containing only the leader produce
    /// no group.
    ///
    /// Call with the replica topology (before clients are appended);
    /// [`paxi::Experiment::topology`] returns exactly that.
    pub fn per_region(topology: &simnet::Topology, leader: NodeId) -> Self {
        let groups: Vec<Vec<NodeId>> = (0..topology.num_regions())
            .map(|region| {
                topology
                    .nodes_in_region(region)
                    .into_iter()
                    .filter(|&node| node != leader)
                    .collect::<Vec<_>>()
            })
            .filter(|g| !g.is_empty())
            .collect();
        GroupSpec::Explicit(groups)
    }
}

/// The materialized relay groups for one leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayGroups {
    groups: Vec<Vec<NodeId>>,
}

impl RelayGroups {
    /// Build groups over `followers` (the cluster minus the leader).
    ///
    /// Panics on invalid specs: zero groups, more groups than followers,
    /// or explicit groups that do not exactly partition the followers.
    pub fn build(followers: &[NodeId], spec: &GroupSpec) -> Self {
        match spec {
            GroupSpec::Chunks(r) => {
                assert!(*r >= 1, "need at least one relay group");
                assert!(
                    *r <= followers.len(),
                    "more groups ({r}) than followers ({})",
                    followers.len()
                );
                let r = *r;
                let n = followers.len();
                let base = n / r;
                let extra = n % r;
                let mut groups = Vec::with_capacity(r);
                let mut idx = 0;
                for g in 0..r {
                    let size = base + usize::from(g < extra);
                    groups.push(followers[idx..idx + size].to_vec());
                    idx += size;
                }
                RelayGroups { groups }
            }
            GroupSpec::Explicit(groups) => {
                let mut seen: Vec<NodeId> = groups.iter().flatten().copied().collect();
                seen.sort();
                let mut expect = followers.to_vec();
                expect.sort();
                assert_eq!(
                    seen, expect,
                    "explicit groups must exactly partition the followers"
                );
                assert!(groups.iter().all(|g| !g.is_empty()), "empty relay group");
                RelayGroups {
                    groups: groups.clone(),
                }
            }
        }
    }

    /// The groups.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// Number of relay groups `r`.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Pick this round's relays: one random member per group. Returns
    /// `(relay, rest-of-group)` pairs.
    pub fn pick_relays(&self, rng: &mut StdRng) -> Vec<(NodeId, Vec<NodeId>)> {
        self.groups
            .iter()
            .map(|g| {
                let i = rng.gen_range(0..g.len());
                let relay = g[i];
                let peers = g
                    .iter()
                    .copied()
                    .filter(|&n| n != relay)
                    .collect::<Vec<_>>();
                (relay, peers)
            })
            .collect()
    }

    /// Deterministic relay choice: always the first member of each
    /// group. Exists only for the rotation ablation — real PigPaxos
    /// rotates via [`RelayGroups::pick_relays`].
    pub fn pick_fixed_relays(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        self.groups
            .iter()
            .map(|g| {
                let relay = g[0];
                (relay, g[1..].to_vec())
            })
            .collect()
    }

    /// Dynamic relay groups (§4.1): reshuffle the membership while
    /// keeping the group count and sizes.
    pub fn reshuffle(&mut self, rng: &mut StdRng) {
        let sizes: Vec<usize> = self.groups.iter().map(|g| g.len()).collect();
        let mut all: Vec<NodeId> = self.groups.iter().flatten().copied().collect();
        all.shuffle(rng);
        let mut idx = 0;
        for (g, size) in self.groups.iter_mut().zip(sizes) {
            g.clear();
            g.extend_from_slice(&all[idx..idx + size]);
            idx += size;
        }
    }

    /// Total follower count covered by the groups.
    pub fn num_followers(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn followers(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn chunks_partition_evenly() {
        let g = RelayGroups::build(&followers(24), &GroupSpec::Chunks(3));
        assert_eq!(g.num_groups(), 3);
        assert!(g.groups().iter().all(|grp| grp.len() == 8));
        assert_eq!(g.num_followers(), 24);
    }

    #[test]
    fn chunks_handle_remainders() {
        let g = RelayGroups::build(&followers(10), &GroupSpec::Chunks(3));
        let sizes: Vec<usize> = g.groups().iter().map(|x| x.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn chunks_cover_all_followers_disjointly() {
        let f = followers(13);
        let g = RelayGroups::build(&f, &GroupSpec::Chunks(4));
        let mut all: Vec<NodeId> = g.groups().iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, f);
    }

    #[test]
    #[should_panic(expected = "more groups")]
    fn too_many_groups_panics() {
        RelayGroups::build(&followers(2), &GroupSpec::Chunks(3));
    }

    #[test]
    fn explicit_groups_validated() {
        let f = followers(4);
        let ok = GroupSpec::Explicit(vec![vec![NodeId(1), NodeId(3)], vec![NodeId(2), NodeId(4)]]);
        let g = RelayGroups::build(&f, &ok);
        assert_eq!(g.num_groups(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly partition")]
    fn explicit_groups_must_cover() {
        let f = followers(4);
        RelayGroups::build(&f, &GroupSpec::Explicit(vec![vec![NodeId(1)]]));
    }

    #[test]
    fn pick_relays_returns_one_per_group() {
        let g = RelayGroups::build(&followers(24), &GroupSpec::Chunks(3));
        let mut r = rng();
        let picks = g.pick_relays(&mut r);
        assert_eq!(picks.len(), 3);
        for (relay, peers) in &picks {
            assert_eq!(peers.len(), 7);
            assert!(!peers.contains(relay));
        }
    }

    #[test]
    fn relays_rotate_across_rounds() {
        let g = RelayGroups::build(&followers(24), &GroupSpec::Chunks(2));
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for (relay, _) in g.pick_relays(&mut r) {
                seen.insert(relay);
            }
        }
        // With 100 rounds over groups of 12, nearly every follower should
        // have served as a relay at least once.
        assert!(
            seen.len() >= 20,
            "rotation too narrow: {} distinct relays",
            seen.len()
        );
    }

    #[test]
    fn relay_selection_roughly_uniform() {
        let g = RelayGroups::build(&followers(12), &GroupSpec::Chunks(1));
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        let rounds = 6000;
        for _ in 0..rounds {
            let (relay, _) = g.pick_relays(&mut r)[0];
            *counts.entry(relay).or_insert(0u32) += 1;
        }
        for (&node, &c) in &counts {
            let expected = rounds as f64 / 12.0;
            assert!(
                (c as f64) > expected * 0.7 && (c as f64) < expected * 1.3,
                "{node} picked {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn fixed_relays_are_deterministic_first_members() {
        let g = RelayGroups::build(&followers(9), &GroupSpec::Chunks(3));
        let a = g.pick_fixed_relays();
        let b = g.pick_fixed_relays();
        assert_eq!(a, b, "fixed picks never vary");
        for (i, (relay, peers)) in a.iter().enumerate() {
            assert_eq!(*relay, g.groups()[i][0]);
            assert_eq!(peers.len(), g.groups()[i].len() - 1);
            assert!(!peers.contains(relay));
        }
    }

    #[test]
    fn reshuffle_keeps_sizes_and_members() {
        let f = followers(10);
        let mut g = RelayGroups::build(&f, &GroupSpec::Chunks(3));
        let before = g.clone();
        let mut r = rng();
        // Reshuffle until membership actually changes (guaranteed quickly).
        let mut changed = false;
        for _ in 0..10 {
            g.reshuffle(&mut r);
            if g != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "reshuffle should change membership");
        let sizes: Vec<usize> = g.groups().iter().map(|x| x.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut all: Vec<NodeId> = g.groups().iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, f);
    }
}
