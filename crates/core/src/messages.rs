//! PigPaxos wire messages: Paxos messages wrapped in relay envelopes.
//!
//! `Direct(inner)` carries an unmodified Paxos message point-to-point
//! (relay → follower, follower → relay, relay → leader aggregate).
//! `ToRelay { plan, inner }` instructs a relay node: process `inner`
//! yourself, disseminate it along `plan`, aggregate the responses, and
//! send the combined votes to `reply_to`. Because `P1b`/`P2b` already
//! carry vote vectors, "aggregation" is just concatenation and the
//! leader code is byte-for-byte the Multi-Paxos leader.

use paxi::{ProtoMessage, HEADER_BYTES};
use paxos::PaxosMsg;
use simnet::wire::{DOMAIN_PAXOS, DOMAIN_PIG};
use simnet::{NodeId, Wire, WireError, WireHeader, WirePut, WireReader};

/// A (possibly multi-level) dissemination plan for one relay.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayPlan {
    /// Followers this relay contacts directly.
    pub peers: Vec<NodeId>,
    /// Sub-relays, each with its own plan (multi-level trees, §6.3).
    pub sub: Vec<(NodeId, RelayPlan)>,
}

impl RelayPlan {
    /// A single-level plan: contact these peers directly.
    pub fn flat(peers: Vec<NodeId>) -> Self {
        RelayPlan {
            peers,
            sub: Vec::new(),
        }
    }

    /// Number of nodes this plan expects responses from (direct peers +
    /// sub-relays; sub-relays answer for their entire subtree).
    pub fn expected_responders(&self) -> usize {
        self.peers.len() + self.sub.len()
    }

    /// Total followers covered by the plan (all levels).
    pub fn total_nodes(&self) -> usize {
        self.peers.len()
            + self
                .sub
                .iter()
                .map(|(_, p)| 1 + p.total_nodes())
                .sum::<usize>()
    }

    /// Serialized size contribution.
    pub fn wire_bytes(&self) -> usize {
        4 + self.peers.len() * 4
            + self
                .sub
                .iter()
                .map(|(_, p)| 4 + p.wire_bytes())
                .sum::<usize>()
    }
}

/// PigPaxos protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum PigMsg {
    /// Leader → relay (or relay → sub-relay): disseminate and aggregate.
    ToRelay {
        /// Where the aggregate goes (the leader, or the parent relay).
        reply_to: NodeId,
        /// Who to contact and who aggregates below us.
        plan: RelayPlan,
        /// The wrapped Paxos message.
        inner: PaxosMsg,
        /// Minimum responses (including the relay's own vote) before the
        /// first aggregate may be sent (§4.2 partial response collection).
        /// `0` means "wait for everyone or the timeout".
        threshold: usize,
    },
    /// Point-to-point Paxos message (unchanged semantics).
    Direct(PaxosMsg),
}

impl ProtoMessage for PigMsg {
    fn wire_size(&self) -> usize {
        match self {
            PigMsg::ToRelay { plan, inner, .. } => {
                HEADER_BYTES + 8 + plan.wire_bytes() + inner.wire_size()
            }
            PigMsg::Direct(inner) => inner.wire_size(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            PigMsg::ToRelay { .. } => "to_relay",
            PigMsg::Direct(inner) => inner.label(),
        }
    }
}

impl Wire for RelayPlan {
    const KIND: &'static str = "RelayPlan";

    /// `peer count: u16`, `sub count: u16`, the peer node ids (u32
    /// each), then each sub-relay as `node: u32` + its nested plan —
    /// exactly [`RelayPlan::wire_bytes`] bytes at every level.
    fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(self.peers.len() <= u16::MAX as usize, "relay plan too wide");
        assert!(self.sub.len() <= u16::MAX as usize, "relay plan too wide");
        out.put_u16(self.peers.len() as u16);
        out.put_u16(self.sub.len() as u16);
        for p in &self.peers {
            out.put_u32(p.0);
        }
        for (node, plan) in &self.sub {
            out.put_u32(node.0);
            plan.encode_into(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n_peers = r.u16("plan.peer_count")?;
        let n_sub = r.u16("plan.sub_count")?;
        let mut peers = Vec::with_capacity(r.capacity_for(n_peers as usize, 4));
        for _ in 0..n_peers {
            peers.push(NodeId(r.u32("plan.peer")?));
        }
        // 4 node + an (empty) 4-byte nested plan per sub-relay.
        let mut sub = Vec::with_capacity(r.capacity_for(n_sub as usize, 8));
        for _ in 0..n_sub {
            let node = NodeId(r.u32("plan.sub_node")?);
            sub.push((node, RelayPlan::decode(r)?));
        }
        Ok(RelayPlan { peers, sub })
    }
}

impl Wire for PigMsg {
    const KIND: &'static str = "PigMsg";

    /// One-pass encode sized by the exact `wire_size` (see the
    /// `PaxosMsg` impl): one allocation, no growth reallocs.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(paxi::ProtoMessage::wire_size(self));
        self.encode_into(&mut out);
        out
    }

    /// `Direct(inner)` encodes as the inner Paxos message verbatim (the
    /// header's domain byte disambiguates on decode — the relay wrapper
    /// really is zero-overhead on the wire, matching `wire_size()`).
    /// `ToRelay` carries its own header, `reply_to: u32`,
    /// `threshold: u32`, the [`RelayPlan`], then the inner message.
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            PigMsg::ToRelay {
                reply_to,
                plan,
                inner,
                threshold,
            } => {
                assert!(*threshold <= u32::MAX as usize, "threshold overflows u32");
                WireHeader::new(DOMAIN_PIG, 0).encode_into(out);
                out.put_u32(reply_to.0);
                out.put_u32(*threshold as u32);
                plan.encode_into(out);
                inner.encode_into(out);
            }
            PigMsg::Direct(inner) => inner.encode_into(out),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.peek(1)? {
            DOMAIN_PAXOS => Ok(PigMsg::Direct(PaxosMsg::decode(r)?)),
            DOMAIN_PIG => {
                WireHeader::decode(r)?;
                let reply_to = NodeId(r.u32("to_relay.reply_to")?);
                let threshold = r.u32("to_relay.threshold")? as usize;
                let plan = RelayPlan::decode(r)?;
                Ok(PigMsg::ToRelay {
                    reply_to,
                    plan,
                    inner: PaxosMsg::decode(r)?,
                    threshold,
                })
            }
            other => Err(WireError::BadTag {
                what: "pig domain",
                got: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::Ballot;

    fn p1a() -> PaxosMsg {
        PaxosMsg::P1a {
            ballot: Ballot::new(1, NodeId(0)),
            from: 0,
        }
    }

    #[test]
    fn flat_plan_counts() {
        let p = RelayPlan::flat(vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(p.expected_responders(), 3);
        assert_eq!(p.total_nodes(), 3);
    }

    #[test]
    fn nested_plan_counts() {
        // relay -> {2,3 direct} + sub-relay 4 -> {5,6}
        let p = RelayPlan {
            peers: vec![NodeId(2), NodeId(3)],
            sub: vec![(NodeId(4), RelayPlan::flat(vec![NodeId(5), NodeId(6)]))],
        };
        assert_eq!(p.expected_responders(), 3, "2 direct + 1 sub-relay");
        assert_eq!(p.total_nodes(), 5, "all followers under the plan");
    }

    #[test]
    fn wire_size_grows_with_plan() {
        let small = PigMsg::ToRelay {
            reply_to: NodeId(0),
            plan: RelayPlan::flat(vec![NodeId(2)]),
            inner: p1a(),
            threshold: 0,
        };
        let big = PigMsg::ToRelay {
            reply_to: NodeId(0),
            plan: RelayPlan::flat((2..12).map(NodeId).collect()),
            inner: p1a(),
            threshold: 0,
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), 9 * 4);
    }

    #[test]
    fn direct_is_transparent() {
        let d = PigMsg::Direct(p1a());
        assert_eq!(d.wire_size(), p1a().wire_size());
        assert_eq!(d.label(), "p1a");
    }
}
