//! PigPaxos configuration.

use crate::groups::GroupSpec;
use paxos::PaxosConfig;
use simnet::SimDuration;

/// Full PigPaxos configuration: the underlying Paxos timers plus the
/// relay overlay parameters.
#[derive(Debug, Clone)]
pub struct PigConfig {
    /// Timers and execution cost of the underlying Multi-Paxos.
    pub paxos: PaxosConfig,
    /// How followers are partitioned into relay groups.
    pub groups: GroupSpec,
    /// How long a relay waits for its group before sending a partial
    /// aggregate (paper §3.4; Fig. 13 uses 50 ms).
    pub relay_timeout: SimDuration,
    /// How often relays scan for expired aggregations.
    pub relay_scan_interval: SimDuration,
    /// Partial response collection (§4.2): if set, a relay may send its
    /// first aggregate once it holds this many votes (including its own).
    /// `None` waits for the whole group (the basic protocol).
    pub partial_threshold: Option<usize>,
    /// Multi-round aggregate coalescing: a relay holds completed
    /// batched-round (`P2aBatch`) aggregates for up to this window and
    /// ships several rounds' votes to the leader in one `P2bBatch` — a
    /// second multiplier on top of leader-side command batching.
    /// `SimDuration::ZERO` disables it. Only effective with
    /// single-level trees (`levels == 1`); sub-relays must preserve
    /// per-round uplinks for their parents' round matching.
    pub relay_coalesce_window: SimDuration,
    /// Maximum rounds one coalesced uplink may span before it is
    /// flushed regardless of the window.
    pub relay_coalesce_rounds: usize,
    /// Dynamic relay groups (§4.1): reshuffle membership at this period.
    pub reshuffle_interval: Option<SimDuration>,
    /// Relay tree depth: 1 = the paper's default single relay layer;
    /// 2 = nested sub-relays (§6.3 ablation).
    pub levels: usize,
    /// When false, the leader always picks the *first* member of each
    /// group as its relay instead of rotating randomly — the hotspot
    /// anti-pattern the paper's §3.2 rotation argument is about
    /// (ablation support; the paper's protocol always rotates).
    pub rotate_relays: bool,
    /// Serve `Get` requests at non-leader replicas via Paxos Quorum
    /// Reads over the relay tree (§4.3) instead of redirecting to the
    /// leader. Writes always go to the leader.
    pub pqr_reads: bool,
    /// Delay before retrying a quorum read that observed an in-flight
    /// write (the PQR "rinse").
    pub pqr_rinse_delay: SimDuration,
    /// Rinse attempts before giving up and redirecting the client to
    /// the leader.
    pub pqr_max_attempts: u32,
    /// Proxy-side batching of quorum-read probes over the relay tree:
    /// pending read keys coalesce into one `QrReadBatch` per relay
    /// wave (size-or-time/adaptive sizing via the shared
    /// [`paxi::BatchConfig`] machinery, plus at-most-one-outstanding-
    /// wave self-clocking). Disabled by default — every read then pays
    /// its own `QrRead` fan-out, the pre-batching behaviour.
    pub probe_batch: paxi::BatchConfig,
}

impl PigConfig {
    /// LAN defaults with `r` contiguous relay groups.
    ///
    /// The leader's phase-2 retry timeout must exceed the relay timeout
    /// (a retry issued before relays can possibly have answered would
    /// reset their in-flight aggregations), so it is raised to roughly
    /// twice the relay timeout.
    pub fn lan(num_groups: usize) -> Self {
        let mut paxos = PaxosConfig::lan();
        paxos.p2_retry_timeout = SimDuration::from_millis(110);
        PigConfig {
            paxos,
            groups: GroupSpec::Chunks(num_groups),
            relay_timeout: SimDuration::from_millis(50),
            relay_scan_interval: SimDuration::from_millis(5),
            partial_threshold: None,
            relay_coalesce_window: SimDuration::from_micros(250),
            relay_coalesce_rounds: 4,
            reshuffle_interval: None,
            levels: 1,
            rotate_relays: true,
            pqr_reads: false,
            pqr_rinse_delay: SimDuration::from_millis(3),
            pqr_max_attempts: 8,
            probe_batch: paxi::BatchConfig::disabled(),
        }
    }

    /// Fluent helper: enable leader-side command batching (and whatever
    /// reply coalescing the [`paxi::BatchConfig`] carries).
    pub fn with_batch(mut self, batch: paxi::BatchConfig) -> Self {
        self.paxos.batch = batch;
        self
    }

    /// Fluent helper: enable log compaction + snapshot catch-up with
    /// the given policy (stored on the underlying Paxos config; relays
    /// and leaders compact identically).
    pub fn with_snapshots(mut self, snapshot: paxi::SnapshotConfig) -> Self {
        self.paxos.snapshot = snapshot;
        self
    }

    /// Fluent helper: serve reads at follower proxies via Paxos Quorum
    /// Reads (§4.3). The protocol's default client target becomes a
    /// uniform spread over all replicas.
    ///
    /// **Caveat:** PQR mode disables the leader's per-client
    /// sequencing lane ([`paxos::BatchLane`] runs with sequencing
    /// off). Quorum reads are answered at follower proxies and never
    /// reach the leader's log, so a client's sequence numbers have
    /// legitimate gaps there — holding writes for those gaps would
    /// stall them forever. Pipelined clients therefore get FIFO-in-log
    /// ordering only in non-PQR configurations; exactly-once retry
    /// replay is unaffected.
    pub fn with_pqr(mut self) -> Self {
        self.pqr_reads = true;
        self
    }

    /// Fluent helper: batch quorum-read probes over the relay tree
    /// (implies nothing about `pqr_reads` — combine with
    /// [`PigConfig::with_pqr`]). Pending read keys at a proxy coalesce
    /// into one `QrReadBatch` per relay wave; each relay answers with a
    /// single aggregated `QrVoteBatch` uplink per wave, amortizing the
    /// probe fan-out/fan-in the same way `P2aBatch`/`P2bBatch`
    /// amortize write rounds. [`paxi::BatchConfig::adaptive`] is the
    /// recommended policy: isolated reads at low load flush
    /// immediately (no added read latency), saturated proxies fill
    /// waves to the arrival rate.
    pub fn with_probe_batch(mut self, batch: paxi::BatchConfig) -> Self {
        self.probe_batch = batch;
        self
    }

    /// Fluent helper: override the relay-group partition.
    pub fn with_groups(mut self, groups: GroupSpec) -> Self {
        self.groups = groups;
        self
    }

    /// WAN defaults with explicit (per-region) groups.
    pub fn wan(groups: GroupSpec) -> Self {
        let mut paxos = PaxosConfig::wan();
        paxos.p2_retry_timeout = SimDuration::from_millis(650);
        PigConfig {
            paxos,
            groups,
            relay_timeout: SimDuration::from_millis(300),
            relay_scan_interval: SimDuration::from_millis(25),
            partial_threshold: None,
            relay_coalesce_window: SimDuration::from_millis(2),
            relay_coalesce_rounds: 4,
            reshuffle_interval: None,
            levels: 1,
            rotate_relays: true,
            pqr_reads: false,
            pqr_rinse_delay: SimDuration::from_millis(40),
            pqr_max_attempts: 8,
            probe_batch: paxi::BatchConfig::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_defaults() {
        let c = PigConfig::lan(3);
        assert_eq!(c.groups, GroupSpec::Chunks(3));
        assert_eq!(c.relay_timeout, SimDuration::from_millis(50));
        assert_eq!(c.levels, 1);
        assert!(c.partial_threshold.is_none());
    }

    #[test]
    fn wan_uses_longer_timeouts() {
        let c = PigConfig::wan(GroupSpec::Chunks(3));
        assert!(c.relay_timeout > PigConfig::lan(3).relay_timeout);
    }
}
