//! Proxy-side batching of quorum-read probes (§4.3 over the relay
//! tree, amortized).
//!
//! PR-3 measured that quorum reads bypass the leader's command batcher
//! entirely: every read pays its own relay-tree fan-out/fan-in (~12
//! probe messages per read on a 9-node / 2-group cluster) while write
//! rounds amortize through `P2aBatch`. The [`ProbeBatcher`] closes that
//! gap on the proxy side: pending read keys coalesce into one
//! [`paxos::PaxosMsg::QrReadBatch`] per relay *wave*, each relay fans
//! the wave out once, replicas answer every probe in one pass, and each
//! relay returns a single aggregated `QrVoteBatch` uplink per group.
//!
//! Two mechanisms stack:
//!
//! 1. **Size-or-time with adaptive sizing** — the same
//!    [`BatchConfig`]/EWMA machinery as leader-side command batching
//!    ([`paxi::RateEstimator`]): the fill target tracks the probe
//!    arrival rate, so an isolated read at low load flushes immediately
//!    and pays no batching latency.
//! 2. **Wave self-clocking** — at most one probe wave is outstanding
//!    per proxy. Probes arriving while a wave is in flight buffer
//!    behind it and ship together the moment the wave's relay uplinks
//!    return (or its timeout fires). Under closed-loop load this sizes
//!    waves to the natural concurrency at the proxy without any tuning:
//!    the batch grows exactly as fast as the relay round-trip allows.
//!
//! The batcher is pure bookkeeping (no timers, no I/O): the replica
//! owns dissemination and timer arming, mirroring how
//! [`paxos::BatchLane`] splits policy from transport.

use paxi::{BatchConfig, RateEstimator};
use paxos::QrProbe;
use simnet::{NodeId, SimTime};
use std::collections::HashSet;

/// What the replica must do after offering a probe to the batcher.
#[derive(Debug, PartialEq, Eq)]
pub enum ProbePush {
    /// Fill target reached with no wave outstanding: send this wave
    /// now (the caller opens the wave via [`ProbeBatcher::wave_opened`]
    /// once it knows how many relay uplinks to expect).
    Flush(Vec<QrProbe>),
    /// First probe buffered with no wave outstanding: arm the
    /// `max_delay` flush timer.
    ArmTimer,
    /// Buffered (behind an armed timer or an outstanding wave).
    Buffered,
}

/// What the replica must do after a wave completes (or times out).
#[derive(Debug, PartialEq, Eq)]
pub enum ProbeRelease {
    /// The buffer reached the fill target while gated: send it as the
    /// next wave now.
    Flush(Vec<QrProbe>),
    /// Probes are buffered but below the fill target: arm the
    /// `max_delay` flush timer and let the batch keep growing.
    ArmTimer,
    /// Nothing buffered behind the wave.
    Idle,
}

#[derive(Debug)]
struct Outstanding {
    wave: u64,
    /// Relays whose uplink is still expected before the gate reopens.
    /// A set, not a count: partial-threshold relays send *two* uplinks
    /// per round (partial + completion), and a count would let one
    /// relay's pair reopen the gate while the other group is still in
    /// flight.
    awaiting: HashSet<NodeId>,
}

/// Coalesces pending quorum-read probes into relay waves.
#[derive(Debug)]
pub struct ProbeBatcher {
    cfg: BatchConfig,
    buf: Vec<QrProbe>,
    rate: RateEstimator,
    next_wave: u64,
    outstanding: Option<Outstanding>,
    /// Bumped whenever the buffer ships, so a hold timer armed for an
    /// earlier buffer cannot flush a later one before its window.
    generation: u64,
}

impl ProbeBatcher {
    /// Empty batcher with the given policy. `BatchConfig::disabled()`
    /// (the default) turns the whole mechanism off — the replica sends
    /// classic per-read `QrRead` probes instead.
    pub fn new(cfg: BatchConfig) -> Self {
        ProbeBatcher {
            buf: Vec::with_capacity(cfg.max_batch),
            cfg,
            rate: RateEstimator::new(),
            next_wave: 0,
            outstanding: None,
            generation: 0,
        }
    }

    /// True when probe batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The active policy.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Probes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True while a wave is in flight (the gate is closed).
    pub fn wave_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Allocate the id for a wave about to be disseminated.
    pub fn next_wave(&mut self) -> u64 {
        self.next_wave += 1;
        self.next_wave
    }

    /// The caller disseminated wave `wave` through these relays: close
    /// the gate until each of them has answered at least once (or the
    /// caller's wave timeout fires). An empty set leaves the gate open
    /// (nothing will ever answer).
    pub fn wave_opened(&mut self, wave: u64, relays: HashSet<NodeId>) {
        if !relays.is_empty() {
            self.outstanding = Some(Outstanding {
                wave,
                awaiting: relays,
            });
        }
    }

    /// The generation of the currently filling buffer — encode it in
    /// the hold-timer payload and hand it back to
    /// [`ProbeBatcher::on_hold_timer`] so only the timer armed for
    /// *this* buffer can flush it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn take_buf(&mut self) -> Vec<QrProbe> {
        self.generation += 1;
        std::mem::take(&mut self.buf)
    }

    /// Offer a probe arriving at `now`.
    pub fn push(&mut self, probe: QrProbe, now: SimTime) -> ProbePush {
        if self.cfg.adaptive {
            self.rate.observe(now);
        }
        self.buf.push(probe);
        if self.outstanding.is_some() {
            return ProbePush::Buffered; // gated behind the in-flight wave
        }
        if self.buf.len() >= self.target() {
            ProbePush::Flush(self.take_buf())
        } else if self.buf.len() == 1 {
            ProbePush::ArmTimer
        } else {
            ProbePush::Buffered
        }
    }

    /// The current fill target: `max_batch` in fixed mode, the
    /// arrival-rate estimate in adaptive mode (same policy as the
    /// leader-side command batcher).
    fn target(&self) -> usize {
        if self.cfg.adaptive {
            self.rate.target(self.cfg.max_batch, self.cfg.max_delay)
        } else {
            self.cfg.max_batch
        }
    }

    /// The `max_delay` hold timer armed for buffer `generation` fired:
    /// flush whatever is buffered — unless the buffer it was armed for
    /// already shipped (stale generation) or a wave opened in the
    /// meantime (its completion will flush for us).
    pub fn on_hold_timer(&mut self, generation: u64) -> Option<Vec<QrProbe>> {
        if generation != self.generation || self.outstanding.is_some() || self.buf.is_empty() {
            return None;
        }
        Some(self.take_buf())
    }

    /// A relay uplink for `wave` arrived at the proxy. When the wave's
    /// last expected uplink lands, the gate reopens and the buffer
    /// behind it is released through the size-or-time policy: at or
    /// above the fill target it ships as the next wave immediately;
    /// below it, the batch keeps filling until the target or the
    /// `max_delay` timer (`ProbeRelease::ArmTimer`).
    pub fn on_uplink(&mut self, wave: u64, from: NodeId) -> ProbeRelease {
        match &mut self.outstanding {
            Some(o) if o.wave == wave => {
                // Remove by sender: a partial-threshold relay answers
                // twice, and duplicates must not stand in for the
                // relays still owing an uplink.
                o.awaiting.remove(&from);
                if !o.awaiting.is_empty() {
                    return ProbeRelease::Idle;
                }
            }
            _ => return ProbeRelease::Idle, // stale wave (released by timeout)
        }
        self.release()
    }

    /// The wave timeout fired (a relay crashed or its uplink was lost):
    /// force the gate open so buffered probes are not stuck behind a
    /// dead wave. No-op when the wave already completed.
    pub fn on_wave_timeout(&mut self, wave: u64) -> ProbeRelease {
        match &self.outstanding {
            Some(o) if o.wave == wave => {}
            _ => return ProbeRelease::Idle,
        }
        self.release()
    }

    fn release(&mut self) -> ProbeRelease {
        self.outstanding = None;
        if self.buf.is_empty() {
            ProbeRelease::Idle
        } else if self.buf.len() >= self.target() {
            ProbeRelease::Flush(self.take_buf())
        } else {
            ProbeRelease::ArmTimer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn relays(ids: &[u32]) -> HashSet<NodeId> {
        ids.iter().map(|&n| NodeId(n)).collect()
    }

    fn probe(id: u64) -> QrProbe {
        QrProbe {
            id,
            attempt: 1,
            key: id,
        }
    }

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn adaptive() -> ProbeBatcher {
        ProbeBatcher::new(paxi::BatchConfig::adaptive(
            16,
            SimDuration::from_micros(200),
        ))
    }

    #[test]
    fn disabled_config_reports_disabled() {
        let b = ProbeBatcher::new(BatchConfig::disabled());
        assert!(!b.enabled());
        assert!(adaptive().enabled());
    }

    #[test]
    fn first_probe_at_low_load_flushes_immediately() {
        // No rate estimate yet → target 1 → zero added read latency.
        let mut b = adaptive();
        match b.push(probe(1), at(0)) {
            ProbePush::Flush(wave) => assert_eq!(wave.len(), 1),
            other => panic!("expected immediate flush, got {other:?}"),
        }
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn fixed_mode_fills_to_max_batch() {
        let mut b = ProbeBatcher::new(BatchConfig::new(3, SimDuration::from_micros(200)));
        assert_eq!(b.push(probe(1), at(0)), ProbePush::ArmTimer);
        assert_eq!(b.push(probe(2), at(1)), ProbePush::Buffered);
        match b.push(probe(3), at(2)) {
            ProbePush::Flush(wave) => assert_eq!(wave.len(), 3),
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn probes_gate_behind_an_outstanding_wave_and_release_on_completion() {
        let mut b = adaptive();
        let ProbePush::Flush(first) = b.push(probe(1), at(0)) else {
            panic!("first probe flushes")
        };
        let wave = b.next_wave();
        b.wave_opened(wave, relays(&[5, 6])); // two relay groups
        assert!(b.wave_outstanding());
        // Everything arriving mid-flight buffers, regardless of target.
        assert_eq!(b.push(probe(2), at(10)), ProbePush::Buffered);
        assert_eq!(b.push(probe(3), at(20)), ProbePush::Buffered);
        assert_eq!(b.push(probe(4), at(30)), ProbePush::Buffered);
        assert_eq!(first.len(), 1);
        // Relay 5's uplink: gate stays closed — and a *duplicate* from
        // relay 5 (partial-threshold relays answer twice) must not
        // stand in for relay 6. Relay 6's uplink reopens the gate. The
        // dense arrivals drove the adaptive target above the 3 buffered
        // probes, so the release keeps filling behind the hold timer,
        // which then ships everything as one wave.
        assert_eq!(b.on_uplink(wave, NodeId(5)), ProbeRelease::Idle);
        assert_eq!(
            b.on_uplink(wave, NodeId(5)),
            ProbeRelease::Idle,
            "duplicate uplink from the same relay must not reopen the gate"
        );
        assert_eq!(b.on_uplink(wave, NodeId(6)), ProbeRelease::ArmTimer);
        assert!(!b.wave_outstanding());
        let next = b
            .on_hold_timer(b.generation())
            .expect("timer flushes the open buffer");
        assert_eq!(next.len(), 3, "self-clocked wave carries all arrivals");
    }

    #[test]
    fn wave_timeout_forces_the_gate_open() {
        let mut b = adaptive();
        b.push(probe(1), at(0));
        let wave = b.next_wave();
        b.wave_opened(wave, relays(&[5, 6]));
        b.push(probe(2), at(5));
        // One uplink arrives; the other relay crashed. The forced
        // release reopens the gate (the short 0→5µs gap pushed the
        // adaptive target above 1, so the buffer rides the hold timer).
        assert_eq!(b.on_uplink(wave, NodeId(5)), ProbeRelease::Idle);
        assert_eq!(b.on_wave_timeout(wave), ProbeRelease::ArmTimer);
        assert!(!b.wave_outstanding(), "timeout must force the gate open");
        // A late uplink (or second timeout) for the dead wave is inert.
        assert_eq!(b.on_uplink(wave, NodeId(6)), ProbeRelease::Idle);
        assert_eq!(b.on_wave_timeout(wave), ProbeRelease::Idle);
        let gen = b.generation();
        assert_eq!(b.on_hold_timer(gen).expect("buffer intact").len(), 1);
    }

    #[test]
    fn hold_timer_flushes_only_when_gate_open() {
        let mut b = ProbeBatcher::new(BatchConfig::new(8, SimDuration::from_micros(200)));
        assert_eq!(b.push(probe(1), at(0)), ProbePush::ArmTimer);
        let wave = b.next_wave();
        b.wave_opened(wave, relays(&[5]));
        assert!(
            b.on_hold_timer(b.generation()).is_none(),
            "gated buffer waits for the wave, not the timer"
        );
        // Fixed-size target (8) not reached: the release re-arms the
        // hold timer rather than shipping a tiny wave.
        assert_eq!(b.on_uplink(wave, NodeId(5)), ProbeRelease::ArmTimer);
        assert_eq!(b.push(probe(2), at(300)), ProbePush::Buffered);
        let gen = b.generation();
        let flushed = b.on_hold_timer(gen).expect("timer flushes open buffer");
        assert_eq!(flushed.len(), 2);
        assert!(b.on_hold_timer(gen).is_none(), "nothing left");
    }

    #[test]
    fn stale_generation_hold_timer_cannot_flush_a_newer_buffer() {
        let mut b = ProbeBatcher::new(BatchConfig::new(2, SimDuration::from_micros(200)));
        assert_eq!(b.push(probe(1), at(0)), ProbePush::ArmTimer);
        let stale_gen = b.generation();
        // The buffer fills to target and ships before the timer fires.
        match b.push(probe(2), at(10)) {
            ProbePush::Flush(w) => assert_eq!(w.len(), 2),
            other => panic!("expected flush, got {other:?}"),
        }
        // A new buffer starts filling; the OLD timer fires now. It must
        // not ship the new buffer before its own window.
        assert_eq!(b.push(probe(3), at(20)), ProbePush::ArmTimer);
        assert!(
            b.on_hold_timer(stale_gen).is_none(),
            "stale-generation timer must be inert"
        );
        assert_eq!(b.buffered(), 1, "new buffer intact");
        assert_eq!(b.on_hold_timer(b.generation()).expect("own timer").len(), 1);
    }

    #[test]
    fn wave_ids_are_unique_and_monotonic() {
        let mut b = adaptive();
        let w1 = b.next_wave();
        let w2 = b.next_wave();
        assert!(w2 > w1);
    }
}
