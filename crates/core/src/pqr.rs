//! Paxos Quorum Reads through relay groups (paper §4.3).
//!
//! A quorum read avoids the leader entirely: the proxy (any replica the
//! client contacted) probes a majority of replicas for their latest
//! executed write to the key. If any probed replica holds an
//! accepted-but-uncommitted write to the key, the read must *rinse* —
//! retry until the in-flight write resolves — otherwise returning the
//! highest-slot value is linearizable: every committed write is executed
//! by at least... visible to at least one member of any majority, and
//! the pending-write check rules out in-flight writes that could commit
//! "in the past" of the read.
//!
//! Every probe and answer carries the read's **attempt** number. A
//! rinse restart clears the collected votes and bumps the attempt, and
//! [`PendingReads::add_votes`] drops answers tagged with any other
//! attempt: a delayed answer from the *previous* attempt may predate
//! the in-flight write that forced the rinse, so counting it toward the
//! new attempt could complete the read without re-checking for pending
//! writes — exactly the linearizability hole the retry loop exists to
//! close.
//!
//! The paper's §4.3 observation is that the probe fan-out/fan-in has the
//! same shape as phase-2, so it can ride the same relay trees: the
//! proxy disseminates `QrRead` through one random relay per group and
//! receives aggregated `QrVote`s back. With probe batching
//! ([`crate::probe_batch::ProbeBatcher`]) several pending reads share
//! one `QrReadBatch` per relay wave. This module tracks the proxy-side
//! state; the relay plumbing reuses [`crate::relay::RelayTable`].

use paxi::{Key, RequestId, Value};
use paxos::QrVoteEntry;
use simnet::{NodeId, SimTime};
use std::collections::{HashMap, HashSet};

/// Outcome of feeding votes to a pending read.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// Still waiting for a majority of probe answers.
    Pending,
    /// Majority reached and no pending writes: this value is the
    /// linearizable read result.
    Done(Option<Value>),
    /// Majority reached but some replica has an in-flight write to the
    /// key: retry the probe after a short delay. Returned exactly once
    /// per attempt — late same-attempt votes after the transition are
    /// swallowed so the caller never arms a second rinse timer.
    Rinse,
}

#[derive(Debug)]
struct PendingRead {
    client: NodeId,
    request: RequestId,
    key: Key,
    need: usize,
    voters: HashSet<NodeId>,
    best: Option<QrVoteEntry>,
    pending_write_seen: bool,
    attempt: u32,
    /// True between the `Rinse` outcome and the restart: further votes
    /// are ignored (they belong to a decision already made) and no
    /// second rinse timer may be armed.
    rinsing: bool,
    /// Start of the *current attempt* (restart resets it), so
    /// [`PendingReads::age`] reports per-attempt age and expiry sweeps
    /// catch attempts starved of votes.
    started: SimTime,
}

/// Proxy-side bookkeeping for in-flight quorum reads.
#[derive(Debug, Default)]
pub struct PendingReads {
    next_id: u64,
    reads: HashMap<u64, PendingRead>,
}

impl PendingReads {
    /// Empty table.
    pub fn new() -> Self {
        PendingReads::default()
    }

    /// Number of reads in flight.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True when no read is in flight.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Open a read for `client` (answering `request`) on `key`, needing
    /// `need` distinct probe answers (a majority of replicas). Returns
    /// the read id to embed in the `QrRead`.
    ///
    /// A retry of a request already being read for *supersedes* the old
    /// entry (the old id is dropped and its late votes will be
    /// ignored): without this, a client retrying a vote-starved read
    /// would leak one table entry per retry.
    pub fn start(
        &mut self,
        client: NodeId,
        request: RequestId,
        key: Key,
        need: usize,
        now: SimTime,
    ) -> u64 {
        self.reads
            .retain(|_, r| !(r.client == client && r.request == request));
        self.next_id += 1;
        let id = self.next_id;
        self.reads.insert(
            id,
            PendingRead {
                client,
                request,
                key,
                need,
                voters: HashSet::new(),
                best: None,
                pending_write_seen: false,
                attempt: 1,
                rinsing: false,
                started: now,
            },
        );
        id
    }

    /// The attempt a read is currently collecting votes for (`None`
    /// when the read completed or was aborted). Probes must carry this
    /// tag so answers can be matched back to the right attempt.
    pub fn attempt_of(&self, id: u64) -> Option<u32> {
        self.reads.get(&id).map(|r| r.attempt)
    }

    /// Feed probe answers (own answer or a relay aggregate) for
    /// `attempt`. Votes tagged with a different attempt are dropped —
    /// a delayed previous-attempt answer must not complete the current
    /// attempt (it predates the pending write that forced the rinse).
    pub fn add_votes(&mut self, id: u64, attempt: u32, votes: Vec<QrVoteEntry>) -> ReadOutcome {
        let Some(read) = self.reads.get_mut(&id) else {
            return ReadOutcome::Pending; // completed or unknown: ignore
        };
        if read.attempt != attempt || read.rinsing {
            return ReadOutcome::Pending; // stale attempt, or rinse already decided
        }
        for v in votes {
            if !read.voters.insert(v.node) {
                continue; // duplicate (e.g. partial + completion flush)
            }
            if v.pending_write {
                read.pending_write_seen = true;
            }
            match &read.best {
                Some(b) if b.value_slot >= v.value_slot => {}
                _ => read.best = Some(v),
            }
        }
        if read.voters.len() < read.need {
            return ReadOutcome::Pending;
        }
        if read.pending_write_seen {
            read.rinsing = true;
            ReadOutcome::Rinse
        } else {
            let value = read.best.as_ref().and_then(|b| b.value.clone());
            self.reads.remove(&id);
            ReadOutcome::Done(value)
        }
    }

    /// Restart a rinsing read at `now`: clears collected votes, bumps
    /// the attempt counter, resets the per-attempt clock, and returns
    /// `(client, key, attempt)` so the replica can re-disseminate (or
    /// give up and redirect to the leader).
    pub fn restart(&mut self, id: u64, now: SimTime) -> Option<(NodeId, Key, u32)> {
        let read = self.reads.get_mut(&id)?;
        read.voters.clear();
        read.best = None;
        read.pending_write_seen = false;
        read.rinsing = false;
        read.attempt += 1;
        read.started = now;
        Some((read.client, read.key, read.attempt))
    }

    /// Abandon a read (too many rinses); returns the waiting client and
    /// its request id.
    pub fn abort(&mut self, id: u64) -> Option<(NodeId, RequestId)> {
        self.reads.remove(&id).map(|r| (r.client, r.request))
    }

    /// Drop every read whose current attempt has been collecting votes
    /// for longer than `max_age` (vote starvation: e.g. enough replicas
    /// crashed that a majority can never answer). Returns the waiting
    /// clients so the caller can redirect them to the leader — without
    /// this sweep a starved read would sit in the table forever.
    pub fn expire(
        &mut self,
        now: SimTime,
        max_age: simnet::SimDuration,
    ) -> Vec<(NodeId, RequestId)> {
        let expired: Vec<u64> = self
            .reads
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.started) >= max_age)
            .map(|(&id, _)| id)
            .collect();
        expired
            .into_iter()
            .filter_map(|id| self.abort(id))
            .collect()
    }

    /// The client waiting on a read and the request being answered.
    pub fn client_of(&self, id: u64) -> Option<(NodeId, RequestId)> {
        self.reads.get(&id).map(|r| (r.client, r.request))
    }

    /// Age of a read's *current attempt* (diagnostics; restart resets
    /// the clock).
    pub fn age(&self, id: u64, now: SimTime) -> Option<simnet::SimDuration> {
        self.reads.get(&id).map(|r| now.saturating_sub(r.started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn rid() -> RequestId {
        RequestId {
            client: NodeId(100),
            seq: 1,
        }
    }

    fn entry(node: u32, slot: u64, pending: bool) -> QrVoteEntry {
        QrVoteEntry {
            node: NodeId(node),
            value_slot: slot,
            value: if slot == 0 {
                None
            } else {
                Some(Value::zeros(slot as usize))
            },
            pending_write: pending,
        }
    }

    #[test]
    fn completes_with_majority_and_highest_slot_wins() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(1, 5, false)]),
            ReadOutcome::Pending
        );
        assert_eq!(
            p.add_votes(id, 1, vec![entry(2, 9, false)]),
            ReadOutcome::Pending
        );
        match p.add_votes(id, 1, vec![entry(3, 2, false)]) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 9, "slot-9 value wins"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.is_empty());
    }

    #[test]
    fn aggregated_votes_count_at_once() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        let agg = vec![entry(1, 1, false), entry(2, 3, false), entry(3, 2, false)];
        match p.add_votes(id, 1, agg) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_written_key_reads_none() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, 1, vec![entry(1, 0, false)]);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(2, 0, false)]),
            ReadOutcome::Done(None)
        );
    }

    #[test]
    fn pending_write_forces_rinse() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, 1, vec![entry(1, 5, true)]);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(2, 5, false)]),
            ReadOutcome::Rinse
        );
        // Restart clears state, bumps the attempt, resets the clock.
        let (client, key, attempt) = p.restart(id, SimTime::from_millis(3)).expect("tracked");
        assert_eq!(client, NodeId(100));
        assert_eq!(key, 7);
        assert_eq!(attempt, 2);
        assert_eq!(
            p.age(id, SimTime::from_millis(4)),
            Some(SimDuration::from_millis(1)),
            "age is per-attempt after a restart"
        );
        // Second round without pending writes completes.
        p.add_votes(id, 2, vec![entry(1, 6, false)]);
        match p.add_votes(id, 2, vec![entry(2, 5, false)]) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The headline regression: a delayed attempt-1 vote arriving after
    /// a rinse restart must not count toward attempt 2. Pre-fix (no
    /// attempt tag) the stale vote reached the majority threshold and
    /// completed the read *without re-checking for pending writes* —
    /// returning a value that may predate the write that forced the
    /// rinse.
    #[test]
    fn stale_attempt_votes_do_not_contaminate_the_next_attempt() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        // Attempt 1: node 1 reports an in-flight write; node 2 answers
        // clean → majority with a pending write → rinse.
        p.add_votes(id, 1, vec![entry(1, 5, true)]);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(2, 5, false)]),
            ReadOutcome::Rinse
        );
        p.restart(id, SimTime::from_millis(3));
        // Attempt 2 has one fresh vote so far.
        assert_eq!(
            p.add_votes(id, 2, vec![entry(1, 6, false)]),
            ReadOutcome::Pending
        );
        // A delayed attempt-1 answer from node 3 (sampled BEFORE the
        // pending write resolved) straggles in. It must be dropped —
        // counted, it would be the 2nd voter and complete the read with
        // stale state.
        assert_eq!(
            p.add_votes(id, 1, vec![entry(3, 5, false)]),
            ReadOutcome::Pending,
            "stale-attempt vote must not complete the new attempt"
        );
        assert_eq!(p.len(), 1, "read still pending");
        // The genuine attempt-2 completion sees the resolved write.
        match p.add_votes(id, 2, vec![entry(2, 6, false)]) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 6, "post-write value"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn late_votes_after_rinse_do_not_rearm() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, 1, vec![entry(1, 5, true)]);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(2, 5, false)]),
            ReadOutcome::Rinse
        );
        // A third same-attempt vote arrives before the rinse timer
        // fires: it must NOT produce a second `Rinse` (the caller would
        // arm a duplicate timer → double restart → attempt inflation).
        assert_eq!(
            p.add_votes(id, 1, vec![entry(3, 5, false)]),
            ReadOutcome::Pending,
            "rinse is decided once per attempt"
        );
        assert_eq!(p.attempt_of(id), Some(1), "restart not yet run");
    }

    #[test]
    fn retry_of_same_request_supersedes_the_stuck_read() {
        let mut p = PendingReads::new();
        let id1 = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        p.add_votes(id1, 1, vec![entry(1, 5, false)]);
        // The client gives up waiting and retries the same request
        // (e.g. through the same proxy after a timeout): the old entry
        // must be superseded, not leaked alongside the new one.
        let id2 = p.start(NodeId(100), rid(), 7, 3, SimTime::from_millis(50));
        assert_ne!(id1, id2);
        assert_eq!(p.len(), 1, "stuck predecessor dropped");
        assert_eq!(p.client_of(id1), None);
        assert_eq!(
            p.add_votes(id1, 1, vec![entry(2, 5, false)]),
            ReadOutcome::Pending,
            "late votes for the superseded id are ignored"
        );
    }

    #[test]
    fn expire_sweeps_vote_starved_reads() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        p.add_votes(id, 1, vec![entry(1, 5, false)]);
        assert!(
            p.expire(SimTime::from_millis(99), SimDuration::from_millis(100))
                .is_empty(),
            "not due yet"
        );
        let out = p.expire(SimTime::from_millis(100), SimDuration::from_millis(100));
        assert_eq!(out, vec![(NodeId(100), rid())]);
        assert!(p.is_empty(), "starved read removed");
    }

    #[test]
    fn duplicate_voters_do_not_double_count() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, 1, vec![entry(1, 5, false)]);
        assert_eq!(
            p.add_votes(id, 1, vec![entry(1, 5, false)]),
            ReadOutcome::Pending,
            "same node twice is one vote"
        );
    }

    #[test]
    fn abort_returns_client() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        assert_eq!(p.client_of(id), Some((NodeId(100), rid())));
        assert_eq!(p.attempt_of(id), Some(1));
        assert_eq!(p.abort(id), Some((NodeId(100), rid())));
        assert!(p.is_empty());
        assert_eq!(p.abort(id), None);
        assert_eq!(p.attempt_of(id), None);
    }

    #[test]
    fn votes_for_unknown_read_ignored() {
        let mut p = PendingReads::new();
        assert_eq!(
            p.add_votes(99, 1, vec![entry(1, 1, false)]),
            ReadOutcome::Pending
        );
    }
}
