//! Paxos Quorum Reads through relay groups (paper §4.3).
//!
//! A quorum read avoids the leader entirely: the proxy (any replica the
//! client contacted) probes a majority of replicas for their latest
//! executed write to the key. If any probed replica holds an
//! accepted-but-uncommitted write to the key, the read must *rinse* —
//! retry until the in-flight write resolves — otherwise returning the
//! highest-slot value is linearizable: every committed write is executed
//! by at least... visible to at least one member of any majority, and
//! the pending-write check rules out in-flight writes that could commit
//! "in the past" of the read.
//!
//! The paper's §4.3 observation is that the probe fan-out/fan-in has the
//! same shape as phase-2, so it can ride the same relay trees: the
//! proxy disseminates `QrRead` through one random relay per group and
//! receives aggregated `QrVote`s back. This module tracks the proxy-side
//! state; the relay plumbing reuses [`crate::relay::RelayTable`].

use paxi::{Key, RequestId, Value};
use paxos::QrVoteEntry;
use simnet::{NodeId, SimTime};
use std::collections::{HashMap, HashSet};

/// Outcome of feeding votes to a pending read.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// Still waiting for a majority of probe answers.
    Pending,
    /// Majority reached and no pending writes: this value is the
    /// linearizable read result.
    Done(Option<Value>),
    /// Majority reached but some replica has an in-flight write to the
    /// key: retry the probe after a short delay.
    Rinse,
}

#[derive(Debug)]
struct PendingRead {
    client: NodeId,
    request: RequestId,
    key: Key,
    need: usize,
    voters: HashSet<NodeId>,
    best: Option<QrVoteEntry>,
    pending_write_seen: bool,
    attempts: u32,
    started: SimTime,
}

/// Proxy-side bookkeeping for in-flight quorum reads.
#[derive(Debug, Default)]
pub struct PendingReads {
    next_id: u64,
    reads: HashMap<u64, PendingRead>,
}

impl PendingReads {
    /// Empty table.
    pub fn new() -> Self {
        PendingReads::default()
    }

    /// Number of reads in flight.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True when no read is in flight.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Open a read for `client` (answering `request`) on `key`, needing
    /// `need` distinct probe answers (a majority of replicas). Returns
    /// the read id to embed in the `QrRead`.
    pub fn start(
        &mut self,
        client: NodeId,
        request: RequestId,
        key: Key,
        need: usize,
        now: SimTime,
    ) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.reads.insert(
            id,
            PendingRead {
                client,
                request,
                key,
                need,
                voters: HashSet::new(),
                best: None,
                pending_write_seen: false,
                attempts: 1,
                started: now,
            },
        );
        id
    }

    /// Feed probe answers (own answer or a relay aggregate).
    pub fn add_votes(&mut self, id: u64, votes: Vec<QrVoteEntry>) -> ReadOutcome {
        let Some(read) = self.reads.get_mut(&id) else {
            return ReadOutcome::Pending; // completed or unknown: ignore
        };
        for v in votes {
            if !read.voters.insert(v.node) {
                continue; // duplicate (e.g. partial + completion flush)
            }
            if v.pending_write {
                read.pending_write_seen = true;
            }
            match &read.best {
                Some(b) if b.value_slot >= v.value_slot => {}
                _ => read.best = Some(v),
            }
        }
        if read.voters.len() < read.need {
            return ReadOutcome::Pending;
        }
        if read.pending_write_seen {
            ReadOutcome::Rinse
        } else {
            let value = read.best.as_ref().and_then(|b| b.value.clone());
            self.reads.remove(&id);
            ReadOutcome::Done(value)
        }
    }

    /// Restart a rinsing read: clears collected votes, bumps the attempt
    /// counter, and returns `(client, key, attempts)` so the replica can
    /// re-disseminate (or give up and redirect to the leader).
    pub fn restart(&mut self, id: u64) -> Option<(NodeId, Key, u32)> {
        let read = self.reads.get_mut(&id)?;
        read.voters.clear();
        read.best = None;
        read.pending_write_seen = false;
        read.attempts += 1;
        Some((read.client, read.key, read.attempts))
    }

    /// Abandon a read (too many rinses); returns the waiting client and
    /// its request id.
    pub fn abort(&mut self, id: u64) -> Option<(NodeId, RequestId)> {
        self.reads.remove(&id).map(|r| (r.client, r.request))
    }

    /// The client waiting on a read and the request being answered.
    pub fn client_of(&self, id: u64) -> Option<(NodeId, RequestId)> {
        self.reads.get(&id).map(|r| (r.client, r.request))
    }

    /// Age of a read (diagnostics).
    pub fn age(&self, id: u64, now: SimTime) -> Option<simnet::SimDuration> {
        self.reads.get(&id).map(|r| now.saturating_sub(r.started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid() -> RequestId {
        RequestId {
            client: NodeId(100),
            seq: 1,
        }
    }

    fn entry(node: u32, slot: u64, pending: bool) -> QrVoteEntry {
        QrVoteEntry {
            node: NodeId(node),
            value_slot: slot,
            value: if slot == 0 {
                None
            } else {
                Some(Value::zeros(slot as usize))
            },
            pending_write: pending,
        }
    }

    #[test]
    fn completes_with_majority_and_highest_slot_wins() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        assert_eq!(
            p.add_votes(id, vec![entry(1, 5, false)]),
            ReadOutcome::Pending
        );
        assert_eq!(
            p.add_votes(id, vec![entry(2, 9, false)]),
            ReadOutcome::Pending
        );
        match p.add_votes(id, vec![entry(3, 2, false)]) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 9, "slot-9 value wins"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.is_empty());
    }

    #[test]
    fn aggregated_votes_count_at_once() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 3, SimTime::ZERO);
        let agg = vec![entry(1, 1, false), entry(2, 3, false), entry(3, 2, false)];
        match p.add_votes(id, agg) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_written_key_reads_none() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, vec![entry(1, 0, false)]);
        assert_eq!(
            p.add_votes(id, vec![entry(2, 0, false)]),
            ReadOutcome::Done(None)
        );
    }

    #[test]
    fn pending_write_forces_rinse() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, vec![entry(1, 5, true)]);
        assert_eq!(
            p.add_votes(id, vec![entry(2, 5, false)]),
            ReadOutcome::Rinse
        );
        // Restart clears state and bumps attempts.
        let (client, key, attempts) = p.restart(id).expect("still tracked");
        assert_eq!(client, NodeId(100));
        assert_eq!(key, 7);
        assert_eq!(attempts, 2);
        // Second round without pending writes completes.
        p.add_votes(id, vec![entry(1, 6, false)]);
        match p.add_votes(id, vec![entry(2, 5, false)]) {
            ReadOutcome::Done(Some(v)) => assert_eq!(v.len(), 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_voters_do_not_double_count() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        p.add_votes(id, vec![entry(1, 5, false)]);
        assert_eq!(
            p.add_votes(id, vec![entry(1, 5, false)]),
            ReadOutcome::Pending,
            "same node twice is one vote"
        );
    }

    #[test]
    fn abort_returns_client() {
        let mut p = PendingReads::new();
        let id = p.start(NodeId(100), rid(), 7, 2, SimTime::ZERO);
        assert_eq!(p.client_of(id), Some((NodeId(100), rid())));
        assert_eq!(p.abort(id), Some((NodeId(100), rid())));
        assert!(p.is_empty());
        assert_eq!(p.abort(id), None);
    }

    #[test]
    fn votes_for_unknown_read_ignored() {
        let mut p = PendingReads::new();
        assert_eq!(
            p.add_votes(99, vec![entry(1, 1, false)]),
            ReadOutcome::Pending
        );
    }
}
