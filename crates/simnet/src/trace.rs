//! Optional message-level trace capture.
//!
//! When enabled, the simulator records one [`TraceEntry`] per delivered
//! message. Traces power the §6.4 WAN-traffic accounting benchmark and are
//! invaluable when debugging protocol interleavings; they are off by
//! default because high-throughput runs generate millions of messages.

use crate::id::NodeId;
use crate::time::SimTime;

/// A single delivered (or dropped) message.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery (or drop) time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message label (see [`crate::Message::label`]).
    pub label: &'static str,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Whether the message crossed a region boundary.
    pub cross_region: bool,
    /// Whether the message was dropped by fault injection.
    pub dropped: bool,
}

/// An in-memory trace of delivered messages.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Record one entry.
    pub fn push(&mut self, e: TraceEntry) {
        self.entries.push(e);
    }

    /// All entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of delivered messages matching a label.
    pub fn count_label(&self, label: &str) -> usize {
        self.entries.iter().filter(|e| !e.dropped && e.label == label).count()
    }

    /// Count of delivered messages that crossed a region boundary.
    pub fn cross_region_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.dropped && e.cross_region).count()
    }

    /// Clear all entries while keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &'static str, cross: bool, dropped: bool) -> TraceEntry {
        TraceEntry {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            label,
            bytes: 8,
            cross_region: cross,
            dropped,
        }
    }

    #[test]
    fn counting() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(entry("p2a", false, false));
        t.push(entry("p2a", true, false));
        t.push(entry("p2a", true, true)); // dropped: not counted
        t.push(entry("p2b", false, false));
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_label("p2a"), 2);
        assert_eq!(t.count_label("p2b"), 1);
        assert_eq!(t.cross_region_count(), 1);
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut t = Trace::default();
        t.push(entry("x", false, false));
        t.clear();
        assert!(t.is_empty());
    }
}
