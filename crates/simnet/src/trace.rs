//! Optional message-level trace capture.
//!
//! When enabled, the simulator records one [`TraceEntry`] per delivered
//! message. Traces power the §6.4 WAN-traffic accounting benchmark and are
//! invaluable when debugging protocol interleavings; they are off by
//! default because high-throughput runs generate millions of messages.

use crate::id::NodeId;
use crate::time::SimTime;

/// A single delivered (or dropped) message.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery (or drop) time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message label (see [`crate::Message::label`]).
    pub label: &'static str,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Whether the message crossed a region boundary.
    pub cross_region: bool,
    /// Whether the message was dropped by fault injection.
    pub dropped: bool,
}

/// An in-memory trace of delivered messages.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Record one entry.
    pub fn push(&mut self, e: TraceEntry) {
        self.entries.push(e);
    }

    /// All entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of delivered messages matching a label.
    pub fn count_label(&self, label: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.dropped && e.label == label)
            .count()
    }

    /// Count of delivered messages that crossed a region boundary.
    pub fn cross_region_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.dropped && e.cross_region)
            .count()
    }

    /// Clear all entries while keeping capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Order-sensitive FNV-1a fingerprint over every entry (time, ends,
    /// label, size, flags). Two runs with identical message schedules
    /// produce identical fingerprints — the compact witness used by
    /// determinism regression tests.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, b: u64) -> u64 {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        for e in &self.entries {
            h = eat(h, e.at.as_nanos());
            h = eat(h, e.from.0 as u64);
            h = eat(h, e.to.0 as u64);
            h = eat(h, e.bytes as u64);
            h = eat(h, ((e.cross_region as u64) << 1) | e.dropped as u64);
            for b in e.label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &'static str, cross: bool, dropped: bool) -> TraceEntry {
        TraceEntry {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            label,
            bytes: 8,
            cross_region: cross,
            dropped,
        }
    }

    #[test]
    fn counting() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(entry("p2a", false, false));
        t.push(entry("p2a", true, false));
        t.push(entry("p2a", true, true)); // dropped: not counted
        t.push(entry("p2b", false, false));
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_label("p2a"), 2);
        assert_eq!(t.count_label("p2b"), 1);
        assert_eq!(t.cross_region_count(), 1);
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut t = Trace::default();
        t.push(entry("x", false, false));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        let mut a = Trace::default();
        a.push(entry("p2a", false, false));
        a.push(entry("p2b", false, false));
        let mut b = Trace::default();
        b.push(entry("p2a", false, false));
        b.push(entry("p2b", false, false));
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = Trace::default();
        c.push(entry("p2b", false, false));
        c.push(entry("p2a", false, false));
        assert_ne!(a.fingerprint(), c.fingerprint(), "order must matter");
        assert_ne!(Trace::default().fingerprint(), a.fingerprint());
    }
}
