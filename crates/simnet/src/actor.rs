//! The actor abstraction: event-driven nodes with explicit effects.
//!
//! Protocol code never touches the network or the clock directly. An
//! [`Actor`] is invoked with a message or timer and emits [`Effect`]s
//! through a [`Context`]. This keeps protocols deterministic, directly
//! unit-testable (construct a `Context`, call the handler, inspect the
//! effects), and independent of the execution environment.

use crate::id::{NodeId, TimerId};
use crate::sim::Control;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// A message that can travel through the simulated network.
///
/// `wire_size` must return the serialized size in bytes: the simulator
/// charges CPU and classifies WAN traffic by it, which is what makes
/// payload-size experiments (paper Fig. 12) and aggregation savings
/// (§6.4) measurable.
pub trait Message: Clone + std::fmt::Debug + 'static {
    /// Serialized size of this message in bytes.
    fn wire_size(&self) -> usize;

    /// Short label for traces and debugging.
    fn label(&self) -> &'static str {
        "msg"
    }
}

/// An event-driven node. All state lives inside the actor; all outputs go
/// through the [`Context`].
pub trait Actor<M: Message> {
    /// Called once at simulation start (time zero), in node-id order.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Called when a timer set by this actor fires. `kind` is the tag the
    /// actor passed to [`Context::set_timer`].
    fn on_timer(&mut self, id: TimerId, kind: u64, ctx: &mut Context<M>);

    /// A stable digest of this actor's replicated state, if it has any.
    ///
    /// Convergence checks (chaos harness, model checking) compare the
    /// digests of all replicas after faults heal and traffic drains; two
    /// replicas that applied the same command sequence must report the
    /// same digest. Actors without replicated state (clients, probes)
    /// keep the default `None` and are skipped by such checks.
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// Boxed actors are actors too. This lets execution substrates that
/// accept `impl Actor<M>` (e.g. the thread-per-node runtime) consume
/// the `Box<dyn Actor<M> + Send>` values a protocol-generic factory
/// produces, without an unboxing adapter at every call site.
impl<M: Message, A: Actor<M> + ?Sized> Actor<M> for Box<A> {
    fn on_start(&mut self, ctx: &mut Context<M>) {
        (**self).on_start(ctx)
    }
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>) {
        (**self).on_message(from, msg, ctx)
    }
    fn on_timer(&mut self, id: TimerId, kind: u64, ctx: &mut Context<M>) {
        (**self).on_timer(id, kind, ctx)
    }
    fn state_digest(&self) -> Option<u64> {
        (**self).state_digest()
    }
}

/// Side effects an actor can produce during a single invocation.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `to`. Delivery time = handler completion + link latency.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Arm a timer that fires after `delay`.
    SetTimer {
        /// Pre-allocated id, already returned to the actor.
        id: TimerId,
        /// Delay from "now".
        delay: SimDuration,
        /// Actor-chosen dispatch tag.
        kind: u64,
    },
    /// Cancel a previously set timer (no-op if already fired).
    CancelTimer(TimerId),
    /// Charge extra CPU time to this node (protocol processing beyond
    /// message handling: state-machine execution, dependency-graph work).
    Charge(SimDuration),
    /// Apply a fault-injection [`Control`] to the network. Emitted by
    /// nemesis actors; the simulator applies it when the handler's
    /// effects are processed. The thread runtime ignores it (fault
    /// injection is a simulator-only facility).
    Control(Control),
}

/// Handler-scope view of the world given to an actor.
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    rng: &'a mut StdRng,
    effects: &'a mut Vec<Effect<M>>,
    timer_seq: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Construct a context. Public so tests and alternative runtimes can
    /// drive actors directly.
    pub fn new(
        now: SimTime,
        node: NodeId,
        rng: &'a mut StdRng,
        effects: &'a mut Vec<Effect<M>>,
        timer_seq: &'a mut u64,
    ) -> Self {
        Context {
            now,
            node,
            rng,
            effects,
            timer_seq,
        }
    }

    /// Current simulated time as observed by this handler.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this actor is running as.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queue a message for sending.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arm a timer; returns its id for cancellation.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        *self.timer_seq += 1;
        let id = TimerId(*self.timer_seq);
        self.effects.push(Effect::SetTimer { id, delay, kind });
        id
    }

    /// Cancel a pending timer. Cancelling an already-fired or unknown
    /// timer is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Charge `d` of simulated CPU time to this node, extending its busy
    /// period. Use for work the cost model cannot see (e.g. applying a
    /// command to the state machine).
    pub fn charge(&mut self, d: SimDuration) {
        self.effects.push(Effect::Charge(d));
    }

    /// Queue a fault-injection [`Control`] (crash, partition, flaky
    /// link, …) for the simulator to apply after this handler returns.
    /// This is how a nemesis actor executes a fault schedule from
    /// inside the simulation; under the thread runtime it is a no-op.
    pub fn control(&mut self, c: Control) {
        self.effects.push(Effect::Control(c));
    }

    /// Re-queue a pre-built effect verbatim. The counterpart of
    /// [`Context::capture`]: a decorator re-emits the captured effects
    /// it does not consume. `SetTimer` ids stay valid because the
    /// timer sequence is shared between the outer and inner contexts.
    pub fn emit(&mut self, effect: Effect<M>) {
        self.effects.push(effect);
    }

    /// Run `f` against a scratch effect buffer that shares this
    /// context's clock, node id, rng, and timer sequence, returning
    /// `f`'s result plus the effects it produced — *without* queueing
    /// them. Decorator actors use this to invoke an inner actor and
    /// filter or rewrite its outputs before re-queueing the survivors
    /// with [`Context::emit`].
    pub fn capture<R>(&mut self, f: impl FnOnce(&mut Context<M>) -> R) -> (R, Vec<Effect<M>>) {
        let mut scratch = Vec::new();
        let r = {
            let mut inner = Context {
                now: self.now,
                node: self.node,
                rng: &mut *self.rng,
                effects: &mut scratch,
                timer_seq: &mut *self.timer_seq,
            };
            f(&mut inner)
        };
        (r, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Debug, Clone)]
    struct Ping(u32);
    impl Message for Ping {
        fn wire_size(&self) -> usize {
            4
        }
        fn label(&self) -> &'static str {
            "ping"
        }
    }

    #[test]
    fn context_collects_effects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut effects = Vec::new();
        let mut seq = 0;
        let mut ctx = Context::new(
            SimTime::from_millis(5),
            NodeId(1),
            &mut rng,
            &mut effects,
            &mut seq,
        );
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.node(), NodeId(1));
        ctx.send(NodeId(2), Ping(7));
        let t = ctx.set_timer(SimDuration::from_millis(10), 42);
        ctx.cancel_timer(t);
        assert_eq!(effects.len(), 3);
        match &effects[0] {
            Effect::Send { to, msg } => {
                assert_eq!(*to, NodeId(2));
                assert_eq!(msg.0, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &effects[1] {
            Effect::SetTimer { id, delay, kind } => {
                assert_eq!(*id, t);
                assert_eq!(*delay, SimDuration::from_millis(10));
                assert_eq!(*kind, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &effects[2] {
            Effect::CancelTimer(id) => assert_eq!(*id, t),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timer_ids_are_unique_and_increasing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut effects: Vec<Effect<Ping>> = Vec::new();
        let mut seq = 0;
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), &mut rng, &mut effects, &mut seq);
        let a = ctx.set_timer(SimDuration::from_millis(1), 0);
        let b = ctx.set_timer(SimDuration::from_millis(1), 0);
        assert!(b > a);
    }

    #[test]
    fn capture_isolates_effects_and_shares_timer_seq() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut effects: Vec<Effect<Ping>> = Vec::new();
        let mut seq = 0;
        {
            let mut ctx = Context::new(SimTime::ZERO, NodeId(3), &mut rng, &mut effects, &mut seq);
            let outer = ctx.set_timer(SimDuration::from_millis(1), 0);
            let ((), captured) = ctx.capture(|inner| {
                assert_eq!(inner.node(), NodeId(3));
                inner.send(NodeId(1), Ping(9));
                let t = inner.set_timer(SimDuration::from_millis(2), 7);
                assert!(t > outer, "inner timers continue the shared sequence");
            });
            assert_eq!(captured.len(), 2, "inner effects stay out of the queue");
            // Re-emitting a captured effect lands it in the outer queue.
            for e in captured {
                ctx.emit(e);
            }
        }
        assert_eq!(
            effects.len(),
            3,
            "outer timer + both re-emitted capture effects"
        );
        // The shared sequence means the next outer timer is still unique.
        let mut ctx = Context::new(SimTime::ZERO, NodeId(3), &mut rng, &mut effects, &mut seq);
        let next = ctx.set_timer(SimDuration::from_millis(1), 0);
        assert_eq!(next, TimerId(3));
    }

    #[test]
    fn message_label_default() {
        #[derive(Debug, Clone)]
        struct Raw;
        impl Message for Raw {
            fn wire_size(&self) -> usize {
                0
            }
        }
        assert_eq!(Raw.label(), "msg");
        assert_eq!(Ping(0).label(), "ping");
    }
}
