//! Identifiers for simulated entities.

use std::fmt;

/// Identifier of a node (actor) in the simulation.
///
/// Node ids are dense small integers assigned in the order actors are added
/// to the [`crate::Simulation`]; protocol code frequently uses them as
/// indices into per-node vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

/// Handle for a pending timer, returned by
/// [`crate::Context::set_timer`] and usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(NodeId::from(7usize), NodeId(7));
        assert_eq!(NodeId(9).index(), 9);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", NodeId(4)), "n4");
        assert_eq!(format!("{}", TimerId(11)), "t11");
    }
}
