//! One-way network latency models.
//!
//! A [`LatencyModel`] describes the one-way delay distribution of a link.
//! The topology (see [`crate::topology`]) maps node pairs to models; the
//! simulator samples a delay from the model for every message.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// A one-way latency distribution for a link.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Fixed delay for every message.
    Constant(SimDuration),
    /// Uniformly distributed delay in `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// Normally distributed delay with the given mean and standard
    /// deviation, truncated below at `floor` (network latency can never be
    /// lower than the propagation delay).
    Normal {
        /// Mean delay.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
        /// Hard lower bound applied after sampling.
        floor: SimDuration,
    },
}

impl LatencyModel {
    /// A constant-delay model.
    pub fn constant(d: SimDuration) -> Self {
        LatencyModel::Constant(d)
    }

    /// A uniform model over `[min, max]`. Panics if `min > max`.
    pub fn uniform(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "uniform latency requires min <= max");
        LatencyModel::Uniform { min, max }
    }

    /// A truncated-normal model with `floor = mean / 2`.
    pub fn normal(mean: SimDuration, std_dev: SimDuration) -> Self {
        LatencyModel::Normal {
            mean,
            std_dev,
            floor: mean / 2,
        }
    }

    /// Typical LAN one-way delay: ~200 µs mean with mild jitter.
    ///
    /// Calibrated so that a request/reply round trip is ≈ 0.4 ms, in line
    /// with intra-AZ EC2 latencies the paper's testbed would see.
    pub fn lan() -> Self {
        LatencyModel::Normal {
            mean: SimDuration::from_micros(200),
            std_dev: SimDuration::from_micros(20),
            floor: SimDuration::from_micros(100),
        }
    }

    /// A WAN link with the given one-way mean delay and 5% jitter.
    pub fn wan(mean: SimDuration) -> Self {
        LatencyModel::Normal {
            mean,
            std_dev: mean / 20,
            floor: mean / 2,
        }
    }

    /// Sample a delay from the model.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                if min == max {
                    min
                } else {
                    SimDuration::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
                }
            }
            LatencyModel::Normal {
                mean,
                std_dev,
                floor,
            } => {
                // Box-Muller transform; avoids a dependency on rand_distr.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let sampled = mean.as_nanos() as f64 + z * std_dev.as_nanos() as f64;
                let clamped = sampled.max(floor.as_nanos() as f64);
                SimDuration::from_nanos(clamped as u64)
            }
        }
    }

    /// The mean of the distribution (used for reporting, not sampling).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => (min + max) / 2,
            LatencyModel::Normal { mean, .. } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_always_same() {
        let m = LatencyModel::constant(SimDuration::from_micros(100));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_micros(100));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_micros(200);
        let m = LatencyModel::uniform(min, max);
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= min && s <= max, "sample {s} out of bounds");
        }
    }

    #[test]
    fn uniform_degenerate_single_point() {
        let d = SimDuration::from_micros(50);
        let m = LatencyModel::uniform(d, d);
        assert_eq!(m.sample(&mut rng()), d);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_bounds() {
        LatencyModel::uniform(SimDuration::from_micros(2), SimDuration::from_micros(1));
    }

    #[test]
    fn normal_respects_floor() {
        let m = LatencyModel::Normal {
            mean: SimDuration::from_micros(100),
            std_dev: SimDuration::from_micros(500), // huge jitter to force clamping
            floor: SimDuration::from_micros(90),
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r) >= SimDuration::from_micros(90));
        }
    }

    #[test]
    fn normal_mean_roughly_correct() {
        let m = LatencyModel::normal(SimDuration::from_millis(10), SimDuration::from_micros(100));
        let mut r = rng();
        let n = 5000;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).as_nanos()).sum();
        let mean = total as f64 / n as f64;
        let expect = SimDuration::from_millis(10).as_nanos() as f64;
        assert!(
            (mean - expect).abs() / expect < 0.01,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::lan();
        let a: Vec<u64> = {
            let mut r = rng();
            (0..100).map(|_| m.sample(&mut r).as_nanos()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..100).map(|_| m.sample(&mut r).as_nanos()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mean_accessor() {
        assert_eq!(
            LatencyModel::constant(SimDuration::from_micros(7)).mean(),
            SimDuration::from_micros(7)
        );
        assert_eq!(
            LatencyModel::uniform(SimDuration::from_micros(10), SimDuration::from_micros(20))
                .mean(),
            SimDuration::from_micros(15)
        );
    }
}
