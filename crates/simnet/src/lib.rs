//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the execution substrate for the PigPaxos reproduction. It
//! replaces the paper's AWS EC2 testbed with a deterministic simulator
//! that models the two resources the paper's analysis is about:
//!
//! 1. **Network latency** — per-link one-way delay distributions arranged
//!    by a [`Topology`] (single-region LAN or multi-region WAN).
//! 2. **Per-node CPU** — every message charged receive/send CPU time at a
//!    single-server queue per node (the analogue of Paxi's single-threaded
//!    event loop), via a [`CpuCostModel`]. Node saturation — the leader
//!    bottleneck PigPaxos attacks — emerges from this model.
//!
//! Protocols are written as [`Actor`]s: pure event-driven state machines
//! that receive messages/timers and emit effects. The same actor code runs
//! under the simulator and under any other event loop.
//!
//! ## Example
//!
//! ```
//! use simnet::*;
//!
//! #[derive(Debug, Clone)]
//! struct Hello;
//! impl Message for Hello {
//!     fn wire_size(&self) -> usize { 8 }
//! }
//!
//! struct Greeter { peer: NodeId, got: u32 }
//! impl Actor<Hello> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Context<Hello>) {
//!         ctx.send(self.peer, Hello);
//!     }
//!     fn on_message(&mut self, from: NodeId, _m: Hello, ctx: &mut Context<Hello>) {
//!         self.got += 1;
//!         if self.got < 3 { ctx.send(from, Hello); }
//!     }
//!     fn on_timer(&mut self, _id: TimerId, _k: u64, _ctx: &mut Context<Hello>) {}
//! }
//!
//! let mut sim = Simulation::new(Topology::lan(2), CpuCostModel::free(), 42);
//! sim.add_actor(Box::new(Greeter { peer: NodeId(1), got: 0 }));
//! sim.add_actor(Box::new(Greeter { peer: NodeId(0), got: 0 }));
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.stats().msgs_delivered >= 5);
//! ```

#![warn(missing_docs)]

mod actor;
mod cost;
mod id;
mod latency;
mod sim;
mod stats;
mod time;
mod topology;
mod trace;
pub mod wire;

pub use actor::{Actor, Context, Effect, Message};
pub use cost::CpuCostModel;
pub use id::{NodeId, TimerId};
pub use latency::LatencyModel;
pub use sim::{derive_node_seed, Control, Simulation};
pub use stats::{NetStats, NodeStats};
pub use time::{SimDuration, SimTime};
pub use topology::{RegionId, Topology};
pub use trace::{Trace, TraceEntry};
pub use wire::{Bytes, Wire, WireError, WireHeader, WirePut, WireReader};
