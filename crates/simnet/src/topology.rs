//! Cluster topology: which region each node lives in and the latency
//! between regions.
//!
//! The paper evaluates both single-datacenter ("LAN") clusters and a
//! 3-region WAN deployment (Virginia / California / Oregon, Fig. 9).
//! [`Topology`] captures both: every node is assigned a region, and a
//! region-by-region matrix of [`LatencyModel`]s gives one-way delays.

use crate::latency::LatencyModel;
use crate::time::SimDuration;
use crate::NodeId;

/// Identifier of a region (index into the latency matrix).
pub type RegionId = usize;

/// Node placement plus inter-region latency matrix.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `region_of[node] = region index`.
    region_of: Vec<RegionId>,
    /// `matrix[from][to]` = one-way latency model between regions.
    matrix: Vec<Vec<LatencyModel>>,
    /// Human-readable region names (same length as `matrix`).
    region_names: Vec<String>,
}

impl Topology {
    /// Build a topology from explicit parts.
    ///
    /// Panics if any region index is out of bounds or the matrix is not
    /// square.
    pub fn new(
        region_of: Vec<RegionId>,
        matrix: Vec<Vec<LatencyModel>>,
        region_names: Vec<String>,
    ) -> Self {
        let r = matrix.len();
        assert!(
            matrix.iter().all(|row| row.len() == r),
            "latency matrix must be square"
        );
        assert_eq!(region_names.len(), r, "one name per region");
        assert!(
            region_of.iter().all(|&reg| reg < r),
            "node region index out of bounds"
        );
        Topology {
            region_of,
            matrix,
            region_names,
        }
    }

    /// A single-region LAN of `n` nodes with the default LAN latency.
    pub fn lan(n: usize) -> Self {
        Topology::lan_with(n, LatencyModel::lan())
    }

    /// A single-region LAN of `n` nodes with a custom intra-region model.
    pub fn lan_with(n: usize, model: LatencyModel) -> Self {
        Topology {
            region_of: vec![0; n],
            matrix: vec![vec![model]],
            region_names: vec!["lan".to_string()],
        }
    }

    /// The paper's Fig. 9 WAN: nodes spread round-robin over Virginia,
    /// California, and Oregon with representative one-way delays
    /// (VA–CA ≈ 31 ms, VA–OR ≈ 36 ms, CA–OR ≈ 10 ms one-way) and LAN
    /// latency within a region.
    pub fn wan_virginia_california_oregon(n: usize) -> Self {
        let lan = LatencyModel::lan();
        let va_ca = LatencyModel::wan(SimDuration::from_millis(31));
        let va_or = LatencyModel::wan(SimDuration::from_millis(36));
        let ca_or = LatencyModel::wan(SimDuration::from_millis(10));
        let matrix = vec![
            vec![lan.clone(), va_ca.clone(), va_or.clone()],
            vec![va_ca, lan.clone(), ca_or.clone()],
            vec![va_or, ca_or, lan],
        ];
        // Group nodes into contiguous blocks per region (matches the
        // paper's "each region is a relay group" setup): nodes
        // [0, n/3) -> Virginia, [n/3, 2n/3) -> California, rest -> Oregon.
        let per = n.div_ceil(3);
        let region_of = (0..n).map(|i| (i / per).min(2)).collect();
        Topology::new(
            region_of,
            matrix,
            vec!["virginia".into(), "california".into(), "oregon".into()],
        )
    }

    /// Number of nodes placed in this topology.
    pub fn num_nodes(&self) -> usize {
        self.region_of.len()
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.matrix.len()
    }

    /// Region of a node.
    pub fn region(&self, node: NodeId) -> RegionId {
        self.region_of[node.index()]
    }

    /// Region name.
    pub fn region_name(&self, region: RegionId) -> &str {
        &self.region_names[region]
    }

    /// All node ids in the given region.
    pub fn nodes_in_region(&self, region: RegionId) -> Vec<NodeId> {
        self.region_of
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == region)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// The latency model between two nodes.
    pub fn link(&self, from: NodeId, to: NodeId) -> &LatencyModel {
        &self.matrix[self.region(from)][self.region(to)]
    }

    /// Whether a message between these nodes crosses a region boundary
    /// (used for the paper's §6.4 WAN-traffic accounting).
    pub fn crosses_region(&self, from: NodeId, to: NodeId) -> bool {
        self.region(from) != self.region(to)
    }

    /// Append extra nodes in a given region (used to co-locate simulated
    /// clients with the cluster without touching replica placement).
    pub fn add_nodes(&mut self, count: usize, region: RegionId) {
        assert!(region < self.num_regions(), "region out of bounds");
        self.region_of.extend(std::iter::repeat(region).take(count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_topology_single_region() {
        let t = Topology::lan(5);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_regions(), 1);
        for i in 0..5u32 {
            assert_eq!(t.region(NodeId(i)), 0);
        }
        assert!(!t.crosses_region(NodeId(0), NodeId(4)));
    }

    #[test]
    fn wan_topology_three_regions() {
        let t = Topology::wan_virginia_california_oregon(15);
        assert_eq!(t.num_regions(), 3);
        assert_eq!(t.nodes_in_region(0).len(), 5);
        assert_eq!(t.nodes_in_region(1).len(), 5);
        assert_eq!(t.nodes_in_region(2).len(), 5);
        assert!(t.crosses_region(NodeId(0), NodeId(5)));
        assert!(!t.crosses_region(NodeId(0), NodeId(4)));
        assert_eq!(t.region_name(0), "virginia");
    }

    #[test]
    fn wan_topology_uneven_split() {
        let t = Topology::wan_virginia_california_oregon(7);
        // per = ceil(7/3) = 3 -> regions sized 3,3,1
        assert_eq!(t.nodes_in_region(0).len(), 3);
        assert_eq!(t.nodes_in_region(1).len(), 3);
        assert_eq!(t.nodes_in_region(2).len(), 1);
    }

    #[test]
    fn wan_cross_region_latency_larger() {
        let t = Topology::wan_virginia_california_oregon(15);
        let intra = t.link(NodeId(0), NodeId(1)).mean();
        let cross = t.link(NodeId(0), NodeId(5)).mean();
        assert!(
            cross > intra * 10,
            "cross {cross} should dwarf intra {intra}"
        );
    }

    #[test]
    fn latency_matrix_symmetric_for_wan_default() {
        let t = Topology::wan_virginia_california_oregon(15);
        for a in 0..3 {
            for b in 0..3 {
                let ab = t.matrix[a][b].mean();
                let ba = t.matrix[b][a].mean();
                assert_eq!(ab, ba);
            }
        }
    }

    #[test]
    fn add_nodes_extends_region() {
        let mut t = Topology::lan(5);
        t.add_nodes(3, 0);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.region(NodeId(7)), 0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square_matrix() {
        Topology::new(
            vec![0],
            vec![vec![LatencyModel::lan()], vec![LatencyModel::lan()]],
            vec!["a".into(), "b".into()],
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_region_index() {
        Topology::new(vec![1], vec![vec![LatencyModel::lan()]], vec!["a".into()]);
    }
}
