//! Simulated time.
//!
//! The simulator keeps a single logical clock with nanosecond resolution.
//! [`SimTime`] is an instant on that clock and [`SimDuration`] a span
//! between two instants. Both are thin wrappers over `u64` nanoseconds so
//! they are `Copy`, totally ordered, and cheap to store in events.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "duration must be non-negative, got {s}");
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Construct from fractional microseconds. Panics on negative input.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us >= 0.0, "duration must be non-negative, got {us}");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimTime subtraction underflow");
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - other.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.2}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_units() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn duration_construction_units() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!(SimTime::from_millis(15) - t, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, SimTime::from_millis(15));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!(a + b, SimDuration::from_micros(14));
        assert_eq!(a - b, SimDuration::from_micros(6));
        assert_eq!(a * 3, SimDuration::from_micros(30));
        assert_eq!(a / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_micros(1);
        let b = SimDuration::from_micros(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn fractional_accessors() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        let t = SimTime::from_micros(2500);
        assert!((t.as_millis_f64() - 2.5).abs() < 1e-9);
        assert!((t.as_micros_f64() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.00s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
