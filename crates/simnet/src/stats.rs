//! Per-node and per-link statistics collected during a run.
//!
//! These counters are the empirical counterpart of the paper's §6 message
//! load model: after a run, `msgs_sent + msgs_received` per node divided by
//! the number of committed operations gives the measured `Ml` / `Mf`,
//! directly comparable to Eq. (1) and Eq. (3).

use crate::time::{SimDuration, SimTime};

/// Counters for a single node.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Messages handed to this node's actor.
    pub msgs_received: u64,
    /// Messages emitted by this node's actor.
    pub msgs_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Total simulated CPU time this node spent handling messages/timers.
    pub busy_time: SimDuration,
    /// Timer firings handled.
    pub timers_fired: u64,
    /// Messages dropped because this node was crashed.
    pub msgs_dropped_crashed: u64,
}

impl NodeStats {
    /// Total messages through this node (sent + received).
    pub fn msgs_total(&self) -> u64 {
        self.msgs_received + self.msgs_sent
    }

    /// Fraction of wall time this node was busy over the given horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time.as_nanos() as f64 / horizon.as_nanos() as f64
    }
}

/// Aggregate statistics for a whole simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Per-node counters, indexed by `NodeId::index()`.
    pub nodes: Vec<NodeStats>,
    /// Messages that crossed a region boundary (WAN traffic, §6.4).
    pub cross_region_msgs: u64,
    /// Bytes that crossed a region boundary.
    pub cross_region_bytes: u64,
    /// Messages dropped by fault injection (links or crashes).
    pub msgs_dropped: u64,
    /// Messages dropped specifically by per-link flakiness
    /// (`Control::FlakyLink`) — a subset of `msgs_dropped`.
    pub msgs_dropped_flaky: u64,
    /// Fault-injection controls applied from actor effects (nemesis
    /// activity indicator; scheduled controls are not counted here).
    pub controls_applied: u64,
    /// Total messages delivered.
    pub msgs_delivered: u64,
}

impl NetStats {
    /// Create stats for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetStats {
            nodes: vec![NodeStats::default(); n],
            ..Default::default()
        }
    }

    /// Grow to accommodate node `i`.
    pub fn ensure(&mut self, i: usize) {
        if self.nodes.len() <= i {
            self.nodes.resize(i + 1, NodeStats::default());
        }
    }

    /// Sum of messages through every node.
    pub fn total_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.msgs_total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_zero_horizon() {
        let s = NodeStats::default();
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let s = NodeStats {
            busy_time: SimDuration::from_millis(500),
            ..Default::default()
        };
        let u = s.utilization(SimTime::from_secs(1));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ensure_grows() {
        let mut s = NetStats::new(2);
        s.ensure(5);
        assert_eq!(s.nodes.len(), 6);
        s.ensure(3); // no shrink
        assert_eq!(s.nodes.len(), 6);
    }

    #[test]
    fn totals() {
        let mut s = NetStats::new(2);
        s.nodes[0].msgs_sent = 3;
        s.nodes[0].msgs_received = 2;
        s.nodes[1].msgs_sent = 1;
        assert_eq!(s.total_msgs(), 6);
    }
}
