//! Per-node CPU cost model.
//!
//! The PigPaxos paper's bottleneck analysis (§6) counts *messages handled
//! per node* because every message costs the node CPU time — parsing,
//! serialization, and protocol bookkeeping all run on Paxi's single main
//! loop. The simulator reproduces this: each node is a single-server queue;
//! receiving and sending a message charge simulated CPU time, and a node
//! that is busy delays subsequent work. Saturation of a node (the leader,
//! in Paxos) is therefore an emergent property of the cost model, exactly
//! as in the paper.

use crate::time::SimDuration;

/// CPU time charged at a node for message handling.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCostModel {
    /// Fixed cost to receive and dispatch one message.
    pub recv_base: SimDuration,
    /// Fixed cost to serialize and enqueue one outgoing message.
    pub send_base: SimDuration,
    /// Additional cost per payload byte (serialization / copying) applied
    /// to both sends and receives.
    pub per_byte: SimDuration,
    /// Cost of handling a timer firing.
    pub timer_cost: SimDuration,
    /// Cost of applying one command to the state machine (protocols
    /// charge this explicitly via `Context::charge` when they execute).
    pub exec_cost: SimDuration,
}

impl CpuCostModel {
    /// Calibrated default, chosen so a 25-node Multi-Paxos cluster
    /// saturates near the paper's ≈2000 req/s (see DESIGN.md §2):
    /// the Paxos leader handles ≈50 messages per operation; at ~10 µs per
    /// message plus ~40 µs of execution that is ~540 µs of leader CPU per
    /// op ⇒ ≈1850 op/s. The same constants put a 5-node Paxos cluster
    /// near 7000 op/s and PigPaxos (25 nodes, 2 groups) near 10000 op/s —
    /// all within the paper's reported ranges.
    pub fn calibrated() -> Self {
        CpuCostModel {
            recv_base: SimDuration::from_micros(12),
            send_base: SimDuration::from_micros(8),
            per_byte: SimDuration::from_nanos(2),
            timer_cost: SimDuration::from_micros(1),
            exec_cost: SimDuration::from_micros(40),
        }
    }

    /// A zero-cost model: messages are free to process. Useful for unit
    /// tests that want pure message-ordering semantics without queueing.
    pub fn free() -> Self {
        CpuCostModel {
            recv_base: SimDuration::ZERO,
            send_base: SimDuration::ZERO,
            per_byte: SimDuration::ZERO,
            timer_cost: SimDuration::ZERO,
            exec_cost: SimDuration::ZERO,
        }
    }

    /// Cost to receive a message of `bytes` payload.
    pub fn recv_cost(&self, bytes: usize) -> SimDuration {
        self.recv_base + self.per_byte * bytes as u64
    }

    /// Cost to send a message of `bytes` payload.
    pub fn send_cost(&self, bytes: usize) -> SimDuration {
        self.send_base + self.per_byte * bytes as u64
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_is_zero() {
        let m = CpuCostModel::free();
        assert_eq!(m.recv_cost(1000), SimDuration::ZERO);
        assert_eq!(m.send_cost(1000), SimDuration::ZERO);
    }

    #[test]
    fn per_byte_scales() {
        let m = CpuCostModel::calibrated();
        let small = m.recv_cost(8);
        let big = m.recv_cost(1280);
        assert!(big > small);
        assert_eq!(
            big - small,
            m.per_byte * (1280 - 8) as u64,
            "difference must be exactly per-byte cost"
        );
    }

    #[test]
    fn calibrated_leader_budget_matches_paper_ballpark() {
        // 25-node Paxos: leader receives 1 client req + 24 acks + sends
        // 24 accepts + 1 reply = 50 messages/op at 8-byte payloads.
        let m = CpuCostModel::calibrated();
        let per_op = m.recv_cost(32) * 25 + m.send_cost(32) * 25 + m.exec_cost;
        let ops_per_sec = 1e9 / per_op.as_nanos() as f64;
        assert!(
            (1500.0..2500.0).contains(&ops_per_sec),
            "calibration drifted: {ops_per_sec} op/s"
        );
    }
}
