//! The discrete-event simulation engine.
//!
//! [`Simulation`] owns a set of [`Actor`]s, a [`Topology`], a
//! [`CpuCostModel`], and a priority queue of pending events. Execution is
//! fully deterministic: events are ordered by `(time, sequence-number)`
//! and all randomness flows from a single master seed (per-node RNGs for
//! actors, one network RNG for latency sampling and drops).
//!
//! ## Node queueing model
//!
//! Each node is a single-server queue — the simulated analogue of Paxi's
//! single-threaded Go event loop. When a message addressed to node `n`
//! arrives at time `t`, handling starts at `max(t, busy_until[n])`,
//! charges the receive cost, runs the handler, then charges the send cost
//! of every outgoing message sequentially. `busy_until[n]` advances to the
//! end of that work. A node whose offered load exceeds its processing
//! capacity therefore builds a queue and its latency diverges — this is
//! precisely the leader bottleneck the PigPaxos paper attacks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, Context, Effect, Message};
use crate::cost::CpuCostModel;
use crate::id::{NodeId, TimerId};
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceEntry};

/// Derive the RNG seed for node `index` from a master seed.
///
/// This is the single source of truth for per-node randomness handoff:
/// the deterministic simulator and the thread-per-node runtime
/// (`pig-runtime`) both seed node `i`'s `StdRng` with
/// `derive_node_seed(master, i)`, so a protocol actor observes the same
/// RNG stream for a given `(master seed, node)` pair regardless of the
/// execution substrate.
pub fn derive_node_seed(master: u64, index: usize) -> u64 {
    master.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1))
}

/// Fault-injection and control operations that can be scheduled for a
/// future simulated time.
#[derive(Debug, Clone)]
pub enum Control {
    /// Node stops processing; all messages and timers addressed to it are
    /// silently dropped (crash model of the paper's §3.1).
    Crash(NodeId),
    /// Node resumes processing with its state intact (crash-recovery).
    Recover(NodeId),
    /// Drop all messages from `0` to `1` (directional).
    BlockLink(NodeId, NodeId),
    /// Remove a directional block.
    UnblockLink(NodeId, NodeId),
    /// Remove all link blocks.
    HealAllLinks,
    /// Set the uniform drop probability for every message in flight
    /// (the schedulable form of [`Simulation::set_drop_rate`]).
    SetDropRate(f64),
    /// Make the directional link `0 → 1` flaky: each message crossing
    /// it is dropped with the given probability. A probability of `0.0`
    /// restores the link.
    FlakyLink(NodeId, NodeId, f64),
    /// Restore every flaky link to reliable delivery.
    ClearFlakyLinks,
    /// Inflate delivery latency of every message sent *or* received by
    /// the node by the extra duration (a degraded/overloaded box, GC
    /// pauses, a saturated NIC). `SimDuration::ZERO` restores the node.
    SlowNode(NodeId, SimDuration),
    /// Restore every slow node to nominal latency.
    ClearSlowNodes,
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        kind: u64,
    },
    Control(Control),
}

struct QueuedEvent<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic discrete-event simulator.
pub struct Simulation<M: Message> {
    time: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    seq: u64,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    topology: Topology,
    cost: CpuCostModel,
    busy_until: Vec<SimTime>,
    crashed: Vec<bool>,
    cancelled_timers: HashSet<u64>,
    blocked_links: HashSet<(u32, u32)>,
    flaky_links: HashMap<(u32, u32), f64>,
    slow_nodes: HashMap<u32, SimDuration>,
    drop_rate: f64,
    net_rng: StdRng,
    node_rngs: Vec<StdRng>,
    timer_seq: u64,
    stats: NetStats,
    trace: Option<Trace>,
    started: bool,
    effects_scratch: Vec<Effect<M>>,
}

impl<M: Message> Simulation<M> {
    /// Create a simulation over `topology` with the given cost model and
    /// master seed.
    pub fn new(topology: Topology, cost: CpuCostModel, seed: u64) -> Self {
        let n = topology.num_nodes();
        Simulation {
            time: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            actors: Vec::with_capacity(n),
            busy_until: vec![SimTime::ZERO; n],
            crashed: vec![false; n],
            cancelled_timers: HashSet::new(),
            blocked_links: HashSet::new(),
            flaky_links: HashMap::new(),
            slow_nodes: HashMap::new(),
            drop_rate: 0.0,
            net_rng: StdRng::seed_from_u64(seed ^ 0x5eed_0000_0000_0001),
            node_rngs: (0..n)
                .map(|i| StdRng::seed_from_u64(derive_node_seed(seed, i)))
                .collect(),
            timer_seq: 0,
            stats: NetStats::new(n),
            trace: None,
            started: false,
            effects_scratch: Vec::new(),
            topology,
            cost,
        }
    }

    /// Register the next actor; returns its [`NodeId`]. Actors must be
    /// added in id order and may not exceed the topology size.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId::from(self.actors.len());
        assert!(
            id.index() < self.topology.num_nodes(),
            "more actors ({}) than topology nodes ({})",
            id.index() + 1,
            self.topology.num_nodes()
        );
        self.actors.push(Some(actor));
        id
    }

    /// Enable message tracing (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// The captured trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Set a uniform probability of dropping any message in flight.
    pub fn set_drop_rate(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop rate must be a probability");
        self.drop_rate = p;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Immutable access to an actor (e.g. to read final state in tests).
    ///
    /// Panics if called while that actor is being invoked.
    pub fn actor(&self, node: NodeId) -> &dyn Actor<M> {
        self.actors[node.index()]
            .as_deref()
            .expect("actor is currently executing")
    }

    /// Mutable access to an actor.
    pub fn actor_mut(&mut self, node: NodeId) -> &mut (dyn Actor<M> + 'static) {
        self.actors[node.index()]
            .as_deref_mut()
            .expect("actor is currently executing")
    }

    /// Schedule a control operation at an absolute simulated time.
    pub fn schedule_control(&mut self, at: SimTime, control: Control) {
        self.push_event(at, EventKind::Control(control));
    }

    /// Crash a node immediately.
    pub fn crash(&mut self, node: NodeId) {
        self.apply_control(Control::Crash(node));
    }

    /// Recover a node immediately.
    pub fn recover(&mut self, node: NodeId) {
        self.apply_control(Control::Recover(node));
    }

    /// Block both directions between every pair in `a × b` (a symmetric
    /// network partition).
    pub fn partition(&mut self, a: &[NodeId], b: &[NodeId]) {
        for &x in a {
            for &y in b {
                self.blocked_links.insert((x.0, y.0));
                self.blocked_links.insert((y.0, x.0));
            }
        }
    }

    /// Remove all link blocks.
    pub fn heal(&mut self) {
        self.blocked_links.clear();
    }

    /// Inject a message from the outside world (e.g. a test driving a
    /// single actor). Delivered after the link latency from `from`.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M, delay: SimDuration) {
        let at = self.time + delay;
        self.push_event(at, EventKind::Deliver { from, to, msg });
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn apply_control(&mut self, c: Control) {
        match c {
            Control::Crash(n) => self.crashed[n.index()] = true,
            Control::Recover(n) => {
                self.crashed[n.index()] = false;
                // A recovered node must not owe the past any CPU time.
                let i = n.index();
                if self.busy_until[i] < self.time {
                    self.busy_until[i] = self.time;
                }
            }
            Control::BlockLink(a, b) => {
                self.blocked_links.insert((a.0, b.0));
            }
            Control::UnblockLink(a, b) => {
                self.blocked_links.remove(&(a.0, b.0));
            }
            Control::HealAllLinks => self.blocked_links.clear(),
            Control::SetDropRate(p) => self.set_drop_rate(p),
            Control::FlakyLink(a, b, p) => self.set_flaky_link(a, b, p),
            Control::ClearFlakyLinks => self.flaky_links.clear(),
            Control::SlowNode(n, extra) => self.set_slow_node(n, extra),
            Control::ClearSlowNodes => self.slow_nodes.clear(),
        }
    }

    /// Make the directional link `from → to` flaky with the given drop
    /// probability; `0.0` restores it. Flaky drops consume network
    /// randomness only for messages that actually cross a flaky link, so
    /// configurations without flaky links keep a bit-identical event
    /// schedule.
    pub fn set_flaky_link(&mut self, from: NodeId, to: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop probability required");
        if p == 0.0 {
            self.flaky_links.remove(&(from.0, to.0));
        } else {
            self.flaky_links.insert((from.0, to.0), p);
        }
    }

    /// Add `extra` delivery latency to every message sent or received by
    /// `node`; `SimDuration::ZERO` restores it.
    pub fn set_slow_node(&mut self, node: NodeId, extra: SimDuration) {
        if extra == SimDuration::ZERO {
            self.slow_nodes.remove(&node.0);
        } else {
            self.slow_nodes.insert(node.0, extra);
        }
    }

    /// Run every actor's `on_start` at time zero (idempotent; also called
    /// automatically by the run methods).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let node = NodeId::from(i);
            self.invoke(node, self.time, SimDuration::ZERO, |actor, ctx| {
                actor.on_start(ctx)
            });
        }
    }

    /// Process events until the queue is empty or `deadline` is passed.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start();
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.time = ev.at;
            self.dispatch(ev.kind);
            processed += 1;
        }
        // Advance the clock to the deadline even if the queue drained early
        // so that back-to-back run calls observe monotonic time.
        if self.time < deadline {
            self.time = deadline;
        }
        processed
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.time + d;
        self.run_until(deadline)
    }

    /// Process a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                self.time = ev.at;
                self.dispatch(ev.kind);
                true
            }
            None => false,
        }
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Control(c) => self.apply_control(c),
            EventKind::Timer { node, id, kind } => {
                if self.cancelled_timers.remove(&id.0) {
                    return;
                }
                if self.crashed[node.index()] {
                    return;
                }
                self.stats.ensure(node.index());
                self.stats.nodes[node.index()].timers_fired += 1;
                let pre = self.cost.timer_cost;
                self.invoke(node, self.time, pre, |actor, ctx| {
                    actor.on_timer(id, kind, ctx)
                });
            }
            EventKind::Deliver { from, to, msg } => {
                let i = to.index();
                self.stats.ensure(i);
                if self.crashed[i] {
                    self.stats.nodes[i].msgs_dropped_crashed += 1;
                    self.stats.msgs_dropped += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEntry {
                            at: self.time,
                            from,
                            to,
                            label: msg.label(),
                            bytes: msg.wire_size(),
                            cross_region: self.topology.crosses_region(from, to),
                            dropped: true,
                        });
                    }
                    return;
                }
                let bytes = msg.wire_size();
                self.stats.msgs_delivered += 1;
                self.stats.nodes[i].msgs_received += 1;
                self.stats.nodes[i].bytes_received += bytes as u64;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEntry {
                        at: self.time,
                        from,
                        to,
                        label: msg.label(),
                        bytes,
                        cross_region: self.topology.crosses_region(from, to),
                        dropped: false,
                    });
                }
                let pre = self.cost.recv_cost(bytes);
                self.invoke(to, self.time, pre, |actor, ctx| {
                    actor.on_message(from, msg, ctx)
                });
            }
        }
    }

    /// Core invocation path: account for queueing + pre-cost, run the
    /// handler, then apply its effects (charging send costs sequentially).
    fn invoke<F>(&mut self, node: NodeId, arrive: SimTime, pre_cost: SimDuration, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        let i = node.index();
        let start = self.busy_until[i].max(arrive);
        let handler_time = start + pre_cost;

        let mut actor = self.actors[i].take().expect("reentrant actor invocation");
        let mut effects = std::mem::take(&mut self.effects_scratch);
        effects.clear();
        {
            let mut ctx = Context::new(
                handler_time,
                node,
                &mut self.node_rngs[i],
                &mut effects,
                &mut self.timer_seq,
            );
            f(actor.as_mut(), &mut ctx);
        }
        self.actors[i] = Some(actor);

        let mut cursor = handler_time;
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    cursor += self.cost.send_cost(bytes);
                    self.stats.nodes[i].msgs_sent += 1;
                    self.stats.nodes[i].bytes_sent += bytes as u64;
                    if self.topology.crosses_region(node, to) {
                        self.stats.cross_region_msgs += 1;
                        self.stats.cross_region_bytes += bytes as u64;
                    }
                    if self.blocked_links.contains(&(node.0, to.0)) {
                        self.stats.msgs_dropped += 1;
                        continue;
                    }
                    // Per-link flakiness draws from the network RNG only
                    // when this specific link is flaky, so fault-free
                    // links (and fault-free runs) keep a bit-identical
                    // RNG stream.
                    if !self.flaky_links.is_empty() {
                        if let Some(&p) = self.flaky_links.get(&(node.0, to.0)) {
                            if self.net_rng.gen::<f64>() < p {
                                self.stats.msgs_dropped += 1;
                                self.stats.msgs_dropped_flaky += 1;
                                continue;
                            }
                        }
                    }
                    if self.drop_rate > 0.0 && self.net_rng.gen::<f64>() < self.drop_rate {
                        self.stats.msgs_dropped += 1;
                        continue;
                    }
                    let mut latency = self.topology.link(node, to).sample(&mut self.net_rng);
                    if !self.slow_nodes.is_empty() {
                        if let Some(&extra) = self.slow_nodes.get(&node.0) {
                            latency += extra;
                        }
                        if let Some(&extra) = self.slow_nodes.get(&to.0) {
                            latency += extra;
                        }
                    }
                    self.push_event(
                        cursor + latency,
                        EventKind::Deliver {
                            from: node,
                            to,
                            msg,
                        },
                    );
                }
                Effect::SetTimer { id, delay, kind } => {
                    self.push_event(handler_time + delay, EventKind::Timer { node, id, kind });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id.0);
                }
                Effect::Charge(d) => {
                    cursor += d;
                }
                Effect::Control(c) => {
                    // Nemesis-injected fault: takes effect immediately,
                    // in effect order (messages already emitted by this
                    // handler were sent before the fault landed).
                    self.stats.controls_applied += 1;
                    self.apply_control(c);
                }
            }
        }
        self.effects_scratch = effects;

        self.busy_until[i] = cursor;
        self.stats.nodes[i].busy_time += cursor - start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    #[derive(Debug, Clone)]
    #[allow(dead_code)] // payloads exist to give messages realistic shape
    enum TestMsg {
        Ping(u64),
        Pong(u64),
    }

    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            16
        }
        fn label(&self) -> &'static str {
            match self {
                TestMsg::Ping(_) => "ping",
                TestMsg::Pong(_) => "pong",
            }
        }
    }

    /// Sends `count` pings to a peer on start; counts pongs.
    struct Pinger {
        peer: NodeId,
        count: u64,
        pongs: u64,
        last_pong_at: SimTime,
    }

    impl Actor<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            for k in 0..self.count {
                ctx.send(self.peer, TestMsg::Ping(k));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: TestMsg, ctx: &mut Context<TestMsg>) {
            if let TestMsg::Pong(_) = msg {
                self.pongs += 1;
                self.last_pong_at = ctx.now();
            }
        }
        fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Context<TestMsg>) {}
    }

    /// Echoes pings back as pongs.
    struct Ponger;

    impl Actor<TestMsg> for Ponger {
        fn on_message(&mut self, from: NodeId, msg: TestMsg, ctx: &mut Context<TestMsg>) {
            if let TestMsg::Ping(k) = msg {
                ctx.send(from, TestMsg::Pong(k));
            }
        }
        fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Context<TestMsg>) {}
    }

    fn ping_pong_sim(seed: u64, count: u64) -> Simulation<TestMsg> {
        let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(100)));
        let mut sim = Simulation::new(topo, CpuCostModel::free(), seed);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        sim
    }

    fn pinger_pongs(sim: &Simulation<TestMsg>) -> u64 {
        // Read back final actor state through stats instead of downcasting:
        // pongs received == messages received by node 0.
        sim.stats().nodes[0].msgs_received
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = ping_pong_sim(7, 10);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 10);
        assert_eq!(sim.stats().nodes[1].msgs_received, 10);
        assert_eq!(sim.stats().nodes[1].msgs_sent, 10);
    }

    #[test]
    fn deterministic_same_seed() {
        let run = |seed| {
            let mut sim = ping_pong_sim(seed, 100);
            sim.run_until(SimTime::from_secs(1));
            (sim.stats().msgs_delivered, sim.now())
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn constant_latency_round_trip_timing() {
        // With free CPU and constant 100us one-way latency, pongs return
        // at exactly 200us.
        let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(100)));
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count: 1,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        let events = sim.run_until(SimTime::from_secs(1));
        assert_eq!(events, 2); // one delivery each way
        assert_eq!(sim.stats().msgs_delivered, 2);
    }

    #[test]
    fn crashed_node_drops_messages() {
        let mut sim = ping_pong_sim(5, 10);
        sim.crash(NodeId(1));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 0);
        assert_eq!(sim.stats().nodes[1].msgs_dropped_crashed, 10);
    }

    #[test]
    fn recovery_resumes_processing() {
        let mut sim = ping_pong_sim(5, 1);
        sim.crash(NodeId(1));
        sim.schedule_control(SimTime::from_millis(10), Control::Recover(NodeId(1)));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(pinger_pongs(&sim), 0);
        // Re-inject after recovery.
        sim.run_until(SimTime::from_millis(20));
        sim.inject(
            NodeId(0),
            NodeId(1),
            TestMsg::Ping(99),
            SimDuration::from_micros(1),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 1);
    }

    #[test]
    fn blocked_link_drops_directionally() {
        let mut sim = ping_pong_sim(5, 10);
        // Block only the reply direction.
        sim.apply_control(Control::BlockLink(NodeId(1), NodeId(0)));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().nodes[1].msgs_received, 10, "pings still arrive");
        assert_eq!(pinger_pongs(&sim), 0, "pongs blocked");
        assert_eq!(sim.stats().msgs_dropped, 10);
    }

    #[test]
    fn partition_and_heal() {
        let mut sim = ping_pong_sim(5, 1);
        sim.partition(&[NodeId(0)], &[NodeId(1)]);
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.stats().nodes[1].msgs_received, 0);
        sim.heal();
        sim.inject(
            NodeId(0),
            NodeId(1),
            TestMsg::Ping(1),
            SimDuration::from_micros(1),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 1);
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let mut sim = ping_pong_sim(5, 50);
        sim.set_drop_rate(1.0);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().msgs_delivered, 0);
        assert_eq!(sim.stats().msgs_dropped, 50);
    }

    #[test]
    fn flaky_link_drops_probabilistically_and_directionally() {
        let mut sim = ping_pong_sim(5, 200);
        // Only the forward direction is flaky; replies are reliable.
        sim.set_flaky_link(NodeId(0), NodeId(1), 0.5);
        sim.run_until(SimTime::from_secs(1));
        let through = sim.stats().nodes[1].msgs_received;
        let flaky = sim.stats().msgs_dropped_flaky;
        assert_eq!(
            through + flaky,
            200,
            "every ping delivered or flaky-dropped"
        );
        assert!((40..160).contains(&(flaky as i32)), "~50% dropped: {flaky}");
        // Every surviving ping's pong made it back.
        assert_eq!(pinger_pongs(&sim), through);
    }

    #[test]
    fn flaky_link_certain_drop_and_clear() {
        let mut sim = ping_pong_sim(5, 10);
        sim.set_flaky_link(NodeId(0), NodeId(1), 1.0);
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.stats().msgs_dropped_flaky, 10);
        sim.apply_control(Control::ClearFlakyLinks);
        sim.inject(
            NodeId(0),
            NodeId(1),
            TestMsg::Ping(1),
            SimDuration::from_micros(1),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 1, "healed link delivers again");
    }

    #[test]
    fn flaky_config_without_traffic_on_link_keeps_schedule_identical() {
        // Determinism guard: marking an *unused* link flaky must not
        // shift the network RNG stream for everyone else.
        let run = |flaky: bool| {
            let topo = Topology::lan_with(
                3,
                LatencyModel::normal(SimDuration::from_micros(300), SimDuration::from_micros(60)),
            );
            let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 9);
            sim.add_actor(Box::new(Pinger {
                peer: NodeId(1),
                count: 50,
                pongs: 0,
                last_pong_at: SimTime::ZERO,
            }));
            sim.add_actor(Box::new(Ponger));
            sim.add_actor(Box::new(Ponger));
            if flaky {
                sim.set_flaky_link(NodeId(2), NodeId(0), 0.9); // never carries traffic
            }
            sim.run_until(SimTime::from_secs(1));
            (sim.stats().msgs_delivered, sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn slow_node_inflates_latency_both_directions() {
        let slow_round_trip = |extra_ms: u64| {
            let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(100)));
            let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
            sim.add_actor(Box::new(Pinger {
                peer: NodeId(1),
                count: 1,
                pongs: 0,
                last_pong_at: SimTime::ZERO,
            }));
            sim.add_actor(Box::new(Ponger));
            sim.set_slow_node(NodeId(1), SimDuration::from_millis(extra_ms));
            sim.run_until(SimTime::from_secs(10));
            sim.stats().msgs_delivered
        };
        // Sanity: messages still flow, just later. Compare arrival time.
        let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(100)));
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count: 1,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        sim.set_slow_node(NodeId(1), SimDuration::from_millis(5));
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(
            sim.stats().nodes[1].msgs_received,
            0,
            "ping delayed by +5ms inbound"
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().nodes[1].msgs_received, 1);
        // Pong back is delayed too: +5ms out of the slow node.
        assert_eq!(pinger_pongs(&sim), 1);
        assert_eq!(slow_round_trip(0), 2);
    }

    #[test]
    fn scheduled_drop_rate_and_slow_node_controls_apply() {
        // One ping departs at t=0 and arrives at 100us; the pong would
        // depart at 100us — but a scheduled SetDropRate(1.0) at 50us
        // swallows it (note: `inject` bypasses the send path, so the
        // loss must hit a real actor send).
        let mut sim = ping_pong_sim(5, 1);
        sim.schedule_control(SimTime::from_micros(50), Control::SetDropRate(1.0));
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.stats().nodes[1].msgs_received, 1, "ping got through");
        assert_eq!(pinger_pongs(&sim), 0, "pong eaten by scheduled drop rate");
        assert_eq!(sim.stats().msgs_dropped, 1);
        // Heal the drop rate but slow node 0 by +2ms; a fresh ping
        // injected at node 1 produces a pong that now takes 100us + 2ms.
        sim.schedule_control(SimTime::from_millis(2), Control::SetDropRate(0.0));
        sim.schedule_control(
            SimTime::from_millis(2),
            Control::SlowNode(NodeId(0), SimDuration::from_millis(2)),
        );
        sim.run_until(SimTime::from_millis(3));
        sim.inject(
            NodeId(0),
            NodeId(1),
            TestMsg::Ping(2),
            SimDuration::from_micros(1),
        );
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(pinger_pongs(&sim), 0, "pong still in flight (+2ms)");
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(pinger_pongs(&sim), 1, "slowed pong arrives eventually");
        sim.apply_control(Control::ClearSlowNodes);
        assert!(sim.slow_nodes.is_empty());
    }

    /// Emits a control effect from inside a handler (a minimal nemesis).
    struct CrashOther {
        victim: NodeId,
    }
    impl Actor<TestMsg> for CrashOther {
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: TestMsg, _c: &mut Context<TestMsg>) {}
        fn on_timer(&mut self, _i: TimerId, _k: u64, ctx: &mut Context<TestMsg>) {
            ctx.control(Control::Crash(self.victim));
        }
    }

    #[test]
    fn actor_emitted_control_effect_crashes_victim() {
        let topo = Topology::lan_with(3, LatencyModel::constant(SimDuration::from_micros(100)));
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count: 1,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        sim.add_actor(Box::new(CrashOther { victim: NodeId(1) }));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.is_crashed(NodeId(1)), "nemesis effect applied");
        assert_eq!(sim.stats().controls_applied, 1);
        sim.inject(
            NodeId(0),
            NodeId(1),
            TestMsg::Ping(9),
            SimDuration::from_micros(1),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.stats().nodes[1].msgs_dropped_crashed, 1);
    }

    #[test]
    fn cpu_cost_serializes_node_work() {
        // Node 1 takes 100us per message; 10 messages arrive at ~the same
        // time, so the last pong departs >= 1ms after the first arrival.
        let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(10)));
        let cost = CpuCostModel {
            recv_base: SimDuration::from_micros(100),
            send_base: SimDuration::ZERO,
            per_byte: SimDuration::ZERO,
            timer_cost: SimDuration::ZERO,
            exec_cost: SimDuration::ZERO,
        };
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, cost, 1);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count: 10,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        sim.run_until(SimTime::from_secs(1));
        let busy = sim.stats().nodes[1].busy_time;
        assert!(
            busy >= SimDuration::from_micros(1000),
            "10 msgs x 100us = 1ms busy, got {busy}"
        );
    }

    #[test]
    fn timer_fires_and_cancel_works() {
        struct TimerActor {
            fired: Vec<u64>,
        }
        impl Actor<TestMsg> for TimerActor {
            fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let t2 = ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.set_timer(SimDuration::from_millis(3), 3);
                ctx.cancel_timer(t2);
            }
            fn on_message(&mut self, _f: NodeId, _m: TestMsg, _c: &mut Context<TestMsg>) {}
            fn on_timer(&mut self, _id: TimerId, kind: u64, _ctx: &mut Context<TestMsg>) {
                self.fired.push(kind);
            }
        }
        let topo = Topology::lan(1);
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(TimerActor { fired: vec![] }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats().nodes[0].timers_fired,
            2,
            "cancelled timer must not fire"
        );
    }

    #[test]
    fn trace_records_labels_and_sizes() {
        let mut sim = ping_pong_sim(5, 3);
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        let trace = sim.trace().unwrap();
        assert_eq!(trace.count_label("ping"), 3);
        assert_eq!(trace.count_label("pong"), 3);
        assert!(trace.entries().iter().all(|e| e.bytes == 16));
    }

    #[test]
    fn run_for_advances_clock_even_when_idle() {
        let topo = Topology::lan(1);
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Ponger));
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(sim.now(), SimTime::from_millis(100));
        sim.run_for(SimDuration::from_millis(50));
        assert_eq!(sim.now(), SimTime::from_millis(150));
    }

    #[test]
    fn step_processes_one_event() {
        let mut sim = ping_pong_sim(5, 2);
        sim.start();
        assert!(sim.step());
        assert_eq!(sim.stats().msgs_delivered, 1);
        assert!(sim.step());
        assert_eq!(sim.stats().msgs_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "more actors")]
    fn too_many_actors_panics() {
        let topo = Topology::lan(1);
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Ponger));
        sim.add_actor(Box::new(Ponger));
    }

    /// Charges CPU explicitly on every message.
    struct Charger;
    impl Actor<TestMsg> for Charger {
        fn on_message(&mut self, _f: NodeId, _m: TestMsg, ctx: &mut Context<TestMsg>) {
            ctx.charge(SimDuration::from_micros(250));
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<TestMsg>) {}
    }

    #[test]
    fn charge_extends_busy_time() {
        let topo = Topology::lan_with(2, LatencyModel::constant(SimDuration::from_micros(10)));
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(1),
            count: 4,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Charger));
        sim.run_until(SimTime::from_secs(1));
        let busy = sim.stats().nodes[1].busy_time;
        assert_eq!(
            busy,
            SimDuration::from_micros(1000),
            "4 messages x 250us charged = 1ms busy, got {busy}"
        );
    }

    #[test]
    fn cross_region_messages_counted() {
        let topo = Topology::wan_virginia_california_oregon(6); // 2 per region
        let mut sim: Simulation<TestMsg> = Simulation::new(topo, CpuCostModel::free(), 1);
        // Node 0 (virginia) pings node 2 (california) and node 1 (virginia).
        sim.add_actor(Box::new(Pinger {
            peer: NodeId(2),
            count: 3,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        }));
        sim.add_actor(Box::new(Ponger));
        sim.add_actor(Box::new(Ponger));
        for _ in 3..6 {
            sim.add_actor(Box::new(Ponger));
        }
        sim.run_until(SimTime::from_secs(1));
        // 3 pings + 3 pongs across VA<->CA.
        assert_eq!(sim.stats().cross_region_msgs, 6);
        assert_eq!(sim.stats().cross_region_bytes, 6 * 16);
    }

    #[test]
    fn stats_bytes_accounting() {
        let mut sim = ping_pong_sim(2, 5);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().nodes[0].bytes_sent, 5 * 16);
        assert_eq!(sim.stats().nodes[0].bytes_received, 5 * 16);
    }
}
