//! The stable binary wire schema shared by every execution substrate.
//!
//! [`Message::wire_size`](crate::Message::wire_size) has always been the
//! *contract* for how many bytes a message costs on the network — the
//! simulator charges CPU and classifies WAN traffic by it. [`Wire`] makes
//! that contract real: a type implementing it can be encoded to exactly
//! `wire_size()` bytes and decoded back, so the socket substrate ships
//! the same bytes the simulator charges for, and byte-level experiments
//! transfer between substrates unchanged.
//!
//! ## Framing format
//!
//! A transport frame is a length-prefixed packet:
//!
//! ```text
//! +----------------+----------------+------------------------------+
//! | len: u32 LE    | from: u32 LE   | payload: `len` bytes         |
//! +----------------+----------------+------------------------------+
//! ```
//!
//! `len` counts only the payload; `from` is the sending node id (the
//! actor API surfaces a sender for every delivery). The 8 framing bytes
//! are transport overhead and are **not** part of `wire_size()` —
//! exactly like TCP/IP headers are not part of an application payload.
//!
//! The payload itself always begins with a fixed 24-byte message header
//! (the `HEADER_BYTES` every `wire_size()` implementation already
//! charges), followed by a message-specific body:
//!
//! ```text
//! byte 0        version        (currently 1)
//! byte 1        domain         0 = client, 1 = paxos, 2 = pigpaxos, 3 = epaxos
//! byte 2        kind           variant tag within the domain
//! byte 3        flags          per-variant (operation tag, presence bits)
//! bytes 4..8    aux0: u32 LE   per-variant (usually a collection count)
//! bytes 8..16   aux1: u64 LE   per-variant scratch (zero when unused)
//! bytes 16..24  aux2: u64 LE   per-variant scratch (zero when unused)
//! ```
//!
//! All integers are little-endian. Variable-length fields either carry
//! an explicit length, or — for the single *trailing* payload of a
//! message (a command's value) — consume the rest of the frame, which
//! the length prefix makes unambiguous.
//!
//! ## Size-packing conventions
//!
//! `wire_size()` predates the codec and its per-entry byte budgets are
//! load-bearing (the perf baseline depends on them), so nested entries
//! pack their metadata into exactly the budgeted bytes:
//!
//! * **48-bit slots** — log slot numbers inside repeated entries
//!   (quorum-read freshness slots, learn/snapshot tail entries, recovery
//!   `accepted` entries) encode as `u48`. 2⁴⁸ slots is ~89 years of
//!   traffic at 100k ops/s; encoding asserts the bound.
//! * **16-bit value lengths** — values inside repeated entries carry a
//!   `u16` (or 14-bit, packed with a 2-bit operation tag) length.
//!   Benchmark payloads top out at a few KB; encoding asserts the bound.
//! * **15-bit slot deltas** — phase-2b votes encode their slot relative
//!   to the message's base slot, packed with the `ok` bit.
//!
//! Single trailing values (the command in `P2a`, a reply's read result)
//! have **no** length cap: they take the rest of the frame.
//!
//! ## Determinism
//!
//! Encoding is a pure function of the value: the same message always
//! produces the same bytes (map-backed structures are serialized in
//! sorted order). `encode(x).len() == x.wire_size()` is asserted by the
//! roundtrip property tests for every message type in the workspace.

use std::fmt;

pub use bytes::Bytes;

/// Byte length of the fixed message header every encoded payload starts
/// with. Equals the `HEADER_BYTES` constant protocol crates charge in
/// `wire_size()`.
pub const WIRE_HEADER_BYTES: usize = 24;

/// Current schema version, byte 0 of every header.
pub const WIRE_VERSION: u8 = 1;

/// Domain tag for client traffic (requests, replies, reply batches).
pub const DOMAIN_CLIENT: u8 = 0;
/// Domain tag for Multi-Paxos protocol messages.
pub const DOMAIN_PAXOS: u8 = 1;
/// Domain tag for PigPaxos relay-overlay messages.
pub const DOMAIN_PIG: u8 = 2;
/// Domain tag for EPaxos protocol messages.
pub const DOMAIN_EPAXOS: u8 = 3;
/// Domain tag for shard-control traffic (range moves, snapshot
/// installs, routing-map updates).
pub const DOMAIN_SHARD: u8 = 4;

/// A decoding failure. Encoding is infallible (size invariants are
/// asserted — they are internal protocol bounds, not user input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag or header byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        got: u8,
    },
    /// The header's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Bytes remained after the value was fully decoded.
    TrailingBytes {
        /// The message kind that was being decoded ([`Wire::KIND`]).
        what: &'static str,
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while decoding {what}"),
            WireError::BadTag { what, got } => write!(f, "bad tag {got:#x} for {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::TrailingBytes { what, extra } => {
                write!(f, "{extra} trailing bytes after decoding {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A type with a stable binary encoding whose length equals its
/// [`Message::wire_size`](crate::Message::wire_size) (when it has one).
///
/// Protocol message enums, the client envelope, and every nested value
/// they carry implement this. The contract:
///
/// 1. `decode(&mut WireReader::new(&x.encode().into())) == Ok(x)` —
///    lossless roundtrip;
/// 2. for [`Message`](crate::Message) types,
///    `x.encode().len() == x.wire_size()` — the simulator's byte
///    accounting *is* the socket substrate's byte accounting;
/// 3. encoding is deterministic (no map-iteration-order dependence).
pub trait Wire: Sized {
    /// Human-readable name of this message kind, carried into
    /// diagnostics ([`WireError::TrailingBytes`] names the kind that
    /// left bytes behind). Override per type; the default is only for
    /// small nested values that never head a frame.
    const KIND: &'static str = "value";

    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value, consuming exactly its bytes from the reader.
    /// Trailing-payload fields consume the reader's remaining bytes, so
    /// a value must be the last thing in its enclosing frame slice.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decode a complete frame payload, rejecting leftover bytes.
    ///
    /// Takes the frame as [`Bytes`] so variable-length values inside it
    /// (command payloads, read results) decode as zero-copy slices of
    /// the frame buffer instead of fresh allocations — the received
    /// buffer is shared, refcounted, all the way into the state
    /// machine.
    fn decode_frame(frame: &Bytes) -> Result<Self, WireError> {
        let mut r = WireReader::new(frame);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                what: Self::KIND,
                extra: r.remaining(),
            });
        }
        Ok(v)
    }
}

/// Cursor over an encoded frame payload.
///
/// Backed by a [`Bytes`] frame so value-sized reads can be taken as
/// zero-copy slices ([`WireReader::read_value`]) while fixed-width
/// primitive reads stay plain borrowed slices.
#[derive(Debug)]
pub struct WireReader<'a> {
    frame: &'a Bytes,
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Reader over a full frame payload.
    pub fn new(frame: &'a Bytes) -> Self {
        WireReader { frame, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.frame.len() - self.pos
    }

    /// Capacity to preallocate for `count` wire entries of at least
    /// `min_bytes` each: the declared count, clamped by what the frame
    /// can still hold. Decoders size their containers from header
    /// counts in one shot on well-formed frames, but a corrupted count
    /// must surface as a truncation error — not as a giant allocation
    /// before the first entry is even read.
    pub fn capacity_for(&self, count: usize, min_bytes: usize) -> usize {
        count.min(self.remaining() / min_bytes.max(1))
    }

    /// Look at the byte `offset` positions past the cursor without
    /// consuming (used to dispatch on the header's domain byte).
    pub fn peek(&self, offset: usize) -> Result<u8, WireError> {
        self.frame
            .as_slice()
            .get(self.pos + offset)
            .copied()
            .ok_or(WireError::Truncated { what: "peek" })
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let frame: &'a Bytes = self.frame;
        let s = &frame.as_slice()[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a 48-bit little-endian unsigned integer (packed slot
    /// numbers — see the module docs).
    pub fn u48(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(6, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], 0, 0,
        ]))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Consume exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Consume exactly `n` bytes as an owned, zero-copy slice of the
    /// frame buffer (refcount bump — no payload copy). This is how
    /// decoded values keep their bytes: they share the received frame's
    /// allocation instead of re-materializing it.
    pub fn read_value(&mut self, n: usize, what: &'static str) -> Result<Bytes, WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let b = self.frame.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(b)
    }

    /// Consume every remaining byte (the trailing payload of a frame).
    pub fn rest(&mut self) -> &'a [u8] {
        let frame: &'a Bytes = self.frame;
        let s = &frame.as_slice()[self.pos..];
        self.pos = frame.len();
        s
    }

    /// Consume every remaining byte as an owned, zero-copy slice of the
    /// frame buffer — the trailing-value counterpart of
    /// [`WireReader::read_value`].
    pub fn rest_value(&mut self) -> Bytes {
        let b = self.frame.slice(self.pos..);
        self.pos = self.frame.len();
        b
    }
}

/// Little-endian append helpers for encoders.
pub trait WirePut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a 48-bit value; asserts `v < 2^48`.
    fn put_u48(&mut self, v: u64);
    /// Append a `u64`.
    fn put_u64(&mut self, v: u64);
}

impl WirePut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u48(&mut self, v: u64) {
        assert!(v < (1u64 << 48), "value {v} overflows the u48 wire field");
        self.extend_from_slice(&v.to_le_bytes()[..6]);
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// The fixed 24-byte header starting every encoded message payload.
///
/// `aux0`/`aux1`/`aux2` are per-variant scratch (collection counts,
/// small fixed fields); unused fields encode as zero so identical
/// messages always produce identical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireHeader {
    /// Domain tag (`DOMAIN_*`).
    pub domain: u8,
    /// Variant tag within the domain.
    pub kind: u8,
    /// Per-variant flag byte (operation tags, presence bits).
    pub flags: u8,
    /// Per-variant 32-bit scratch (usually a collection count).
    pub aux0: u32,
    /// Per-variant 64-bit scratch.
    pub aux1: u64,
    /// Per-variant 64-bit scratch.
    pub aux2: u64,
}

impl WireHeader {
    /// Header with a domain and kind; flags/aux zero.
    pub fn new(domain: u8, kind: u8) -> Self {
        WireHeader {
            domain,
            kind,
            ..WireHeader::default()
        }
    }

    /// Set the flag byte.
    pub fn flags(mut self, flags: u8) -> Self {
        self.flags = flags;
        self
    }

    /// Set aux0 (collection counts).
    pub fn aux0(mut self, v: u32) -> Self {
        self.aux0 = v;
        self
    }

    /// Append the 24 header bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u8(WIRE_VERSION);
        out.put_u8(self.domain);
        out.put_u8(self.kind);
        out.put_u8(self.flags);
        out.put_u32(self.aux0);
        out.put_u64(self.aux1);
        out.put_u64(self.aux2);
    }

    /// Consume and validate 24 header bytes.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let version = r.u8("header.version")?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        Ok(WireHeader {
            domain: r.u8("header.domain")?,
            kind: r.u8("header.kind")?,
            flags: r.u8("header.flags")?,
            aux0: r.u32("header.aux0")?,
            aux1: r.u64("header.aux1")?,
            aux2: r.u64("header.aux2")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16(0xABCD);
        out.put_u32(0xDEAD_BEEF);
        out.put_u48(0x0000_1234_5678_9ABC);
        out.put_u64(u64::MAX);
        assert_eq!(out.len(), 1 + 2 + 4 + 6 + 8);
        let frame = Bytes::from(out);
        let mut r = WireReader::new(&frame);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xABCD);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u48("d").unwrap(), 0x0000_1234_5678_9ABC);
        assert_eq!(r.u64("e").unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "overflows the u48")]
    fn u48_overflow_asserts() {
        Vec::new().put_u48(1u64 << 48);
    }

    #[test]
    fn truncation_reported() {
        let frame = Bytes::from(vec![1, 2]);
        let mut r = WireReader::new(&frame);
        assert_eq!(r.u32("field"), Err(WireError::Truncated { what: "field" }));
    }

    #[test]
    fn header_is_24_bytes_and_roundtrips() {
        let h = WireHeader::new(DOMAIN_PAXOS, 3).flags(0b101).aux0(42);
        let mut out = Vec::new();
        h.encode_into(&mut out);
        assert_eq!(out.len(), WIRE_HEADER_BYTES);
        let frame = Bytes::from(out);
        let mut r = WireReader::new(&frame);
        assert_eq!(WireHeader::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn header_version_checked() {
        let mut bytes = vec![0u8; 24];
        bytes[0] = 99;
        let frame = Bytes::from(bytes);
        let mut r = WireReader::new(&frame);
        assert_eq!(WireHeader::decode(&mut r), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn peek_does_not_consume() {
        let frame = Bytes::from(vec![10, 20]);
        let mut r = WireReader::new(&frame);
        assert_eq!(r.peek(1).unwrap(), 20);
        assert_eq!(r.u8("x").unwrap(), 10);
        assert_eq!(r.peek(0).unwrap(), 20);
        assert_eq!(r.peek(1), Err(WireError::Truncated { what: "peek" }));
    }

    #[test]
    fn rest_takes_everything() {
        let frame = Bytes::from(vec![1, 2, 3]);
        let mut r = WireReader::new(&frame);
        r.u8("x").unwrap();
        assert_eq!(r.rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn read_value_is_a_zero_copy_slice_of_the_frame() {
        let frame = Bytes::from(vec![9, 1, 2, 3, 4, 5]);
        let mut r = WireReader::new(&frame);
        r.u8("tag").unwrap();
        let v = r.read_value(3, "v").unwrap();
        assert_eq!(&v[..], &[1, 2, 3]);
        let tail = r.rest_value();
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            r.read_value(1, "past-end"),
            Err(WireError::Truncated { what: "past-end" })
        );
        // The slices share the frame's backing allocation: the frame
        // cannot be reclaimed while they're alive.
        assert!(frame.clone().try_reclaim().is_err());
        drop((v, tail));
    }

    #[test]
    fn trailing_bytes_name_the_kind() {
        #[derive(Debug)]
        struct OneByte;
        impl Wire for OneByte {
            const KIND: &'static str = "OneByte";
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.put_u8(1);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.u8("b")?;
                Ok(OneByte)
            }
        }
        let frame = Bytes::from(vec![1, 2, 3]);
        let err = OneByte::decode_frame(&frame).unwrap_err();
        assert_eq!(
            err,
            WireError::TrailingBytes {
                what: "OneByte",
                extra: 2
            }
        );
        assert!(err.to_string().contains("OneByte"));
    }
}
